// Package connector implements STORM's data connector: schema discovery
// and data parsing for external sources (the paper imports from Excel
// spreadsheets, text files, MySQL, Cassandra and MongoDB — reproduced here
// as CSV/TSV, JSON-lines, SQL-dump and key-value sources), plus the "free
// data module" conversion into the record form the engine indexes.
//
// A Source yields raw string rows; DiscoverSchema infers column types and
// guesses which columns carry longitude, latitude and time; Import runs
// rows through a Mapping into a columnar data.Dataset ready for indexing.
package connector

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"storm/internal/data"
	"storm/internal/geo"
)

// FieldType classifies a column.
type FieldType int

// Supported field types.
const (
	StringField FieldType = iota
	NumberField
	TimeField
)

// String implements fmt.Stringer.
func (t FieldType) String() string {
	switch t {
	case StringField:
		return "string"
	case NumberField:
		return "number"
	case TimeField:
		return "time"
	default:
		return fmt.Sprintf("FieldType(%d)", int(t))
	}
}

// Field is one discovered column.
type Field struct {
	Name string
	Type FieldType
}

// Schema is the result of schema discovery.
type Schema struct {
	Fields []Field
	// X, Y, T name the columns guessed to carry longitude, latitude and
	// time; empty when no candidate was found.
	X, Y, T string
}

// Field returns the field with the given name, or nil.
func (s Schema) Field(name string) *Field {
	for i := range s.Fields {
		if s.Fields[i].Name == name {
			return &s.Fields[i]
		}
	}
	return nil
}

// Source yields raw rows from an external storage engine. Row values are
// strings; typing happens at import through the schema.
type Source interface {
	// Name identifies the source (used as the dataset name).
	Name() string
	// Rows calls fn for every row; fn returning an error aborts with it.
	Rows(fn func(row map[string]string) error) error
}

// timeLayouts are attempted in order when parsing time fields.
var timeLayouts = []string{
	time.RFC3339,
	"2006-01-02 15:04:05",
	"2006-01-02T15:04:05",
	"2006-01-02",
	"01/02/2006 15:04",
	"01/02/2006",
}

// parseTime parses a time string as seconds since the Unix epoch; plain
// numbers are taken as epoch seconds directly.
func parseTime(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, false
	}
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v, true
	}
	for _, layout := range timeLayouts {
		if t, err := time.Parse(layout, s); err == nil {
			return float64(t.Unix()), true
		}
	}
	return 0, false
}

// DiscoverSchema samples up to sampleLimit rows (0 = 1000) and infers
// per-column types plus spatial/temporal roles:
//
//   - a column is numeric if at least 90% of its non-empty samples parse
//     as floats,
//   - a column is temporal if its name suggests time or its values parse
//     as timestamps,
//   - longitude/latitude are matched by name (lon, lng, longitude, x /
//     lat, latitude, y) with a numeric-range sanity check.
func DiscoverSchema(src Source, sampleLimit int) (Schema, error) {
	if sampleLimit <= 0 {
		sampleLimit = 1000
	}
	type colStat struct {
		name            string
		seen, numeric   int
		timeOK          int
		min, max        float64
		nonEmpty        int
		firstAppearance int
	}
	stats := make(map[string]*colStat)
	order := 0
	n := 0
	err := src.Rows(func(row map[string]string) error {
		for k, v := range row {
			st, ok := stats[k]
			if !ok {
				st = &colStat{name: k, min: math.Inf(1), max: math.Inf(-1), firstAppearance: order}
				order++
				stats[k] = st
			}
			st.seen++
			v = strings.TrimSpace(v)
			if v == "" {
				continue
			}
			st.nonEmpty++
			if f, err := strconv.ParseFloat(v, 64); err == nil {
				st.numeric++
				st.min = math.Min(st.min, f)
				st.max = math.Max(st.max, f)
			}
			if _, ok := parseTime(v); ok {
				st.timeOK++
			}
		}
		n++
		if n >= sampleLimit {
			return errStopScan
		}
		return nil
	})
	if err != nil && err != errStopScan {
		return Schema{}, err
	}
	if len(stats) == 0 {
		return Schema{}, fmt.Errorf("connector: source %q has no rows", src.Name())
	}

	cols := make([]*colStat, 0, len(stats))
	for _, st := range stats {
		cols = append(cols, st)
	}
	// Deterministic order: by first appearance.
	for i := 0; i < len(cols); i++ {
		for j := i + 1; j < len(cols); j++ {
			if cols[j].firstAppearance < cols[i].firstAppearance {
				cols[i], cols[j] = cols[j], cols[i]
			}
		}
	}

	var schema Schema
	for _, st := range cols {
		f := Field{Name: st.name, Type: StringField}
		isNumeric := st.nonEmpty > 0 && float64(st.numeric) >= 0.9*float64(st.nonEmpty)
		nameLower := strings.ToLower(st.name)
		isTimeName := nameLower == "time" || nameLower == "timestamp" || nameLower == "ts" ||
			nameLower == "date" || nameLower == "datetime" || strings.HasSuffix(nameLower, "_time") ||
			strings.HasSuffix(nameLower, "_at")
		timeParses := st.nonEmpty > 0 && float64(st.timeOK) >= 0.9*float64(st.nonEmpty)
		switch {
		case isTimeName && timeParses:
			f.Type = TimeField
		case isNumeric:
			f.Type = NumberField
		}
		schema.Fields = append(schema.Fields, f)

		switch {
		case schema.X == "" && isNumeric && isLonName(nameLower) && st.min >= -180 && st.max <= 180:
			schema.X = st.name
		case schema.Y == "" && isNumeric && isLatName(nameLower) && st.min >= -90 && st.max <= 90:
			schema.Y = st.name
		case schema.T == "" && f.Type == TimeField:
			schema.T = st.name
		}
	}
	// Fall back to generic x/y names when no geo names matched.
	if schema.X == "" {
		for _, f := range schema.Fields {
			if f.Type == NumberField && strings.EqualFold(f.Name, "x") {
				schema.X = f.Name
				break
			}
		}
	}
	if schema.Y == "" {
		for _, f := range schema.Fields {
			if f.Type == NumberField && strings.EqualFold(f.Name, "y") {
				schema.Y = f.Name
				break
			}
		}
	}
	return schema, nil
}

func isLonName(s string) bool {
	switch s {
	case "lon", "lng", "long", "longitude":
		return true
	}
	return false
}

func isLatName(s string) bool {
	switch s {
	case "lat", "latitude":
		return true
	}
	return false
}

// errStopScan aborts a row scan early (not an error for callers).
var errStopScan = fmt.Errorf("connector: stop scan")

// Mapping tells Import which columns hold the spatio-temporal coordinates.
// Zero-value fields are filled from the discovered schema.
type Mapping struct {
	X, Y, T string
	// SkipInvalid drops rows whose coordinates fail to parse instead of
	// failing the import.
	SkipInvalid bool
}

// ImportResult reports what an import did.
type ImportResult struct {
	Dataset *data.Dataset
	Schema  Schema
	Rows    int
	Skipped int
}

// Import runs the source through schema discovery (honoring mapping
// overrides) and materializes a columnar dataset: X/Y/T become the record
// position, every other numeric column becomes a numeric attribute, and
// every string column becomes a string attribute.
func Import(src Source, mapping Mapping) (*ImportResult, error) {
	schema, err := DiscoverSchema(src, 0)
	if err != nil {
		return nil, err
	}
	if mapping.X == "" {
		mapping.X = schema.X
	}
	if mapping.Y == "" {
		mapping.Y = schema.Y
	}
	if mapping.T == "" {
		mapping.T = schema.T
	}
	if mapping.X == "" || mapping.Y == "" {
		return nil, fmt.Errorf("connector: source %q: cannot locate spatial columns (found x=%q y=%q); specify a Mapping", src.Name(), mapping.X, mapping.Y)
	}

	ds := data.NewDataset(src.Name())
	for _, f := range schema.Fields {
		if f.Name == mapping.X || f.Name == mapping.Y || f.Name == mapping.T {
			continue
		}
		switch f.Type {
		case NumberField, TimeField:
			ds.AddNumericColumn(f.Name)
		default:
			ds.AddStringColumn(f.Name)
		}
	}

	res := &ImportResult{Dataset: ds, Schema: schema}
	err = src.Rows(func(row map[string]string) error {
		x, errX := strconv.ParseFloat(strings.TrimSpace(row[mapping.X]), 64)
		y, errY := strconv.ParseFloat(strings.TrimSpace(row[mapping.Y]), 64)
		var tval float64
		tOK := true
		if mapping.T != "" {
			tval, tOK = parseTime(row[mapping.T])
		}
		if errX != nil || errY != nil || !tOK {
			if mapping.SkipInvalid {
				res.Skipped++
				return nil
			}
			return fmt.Errorf("connector: row %d: invalid coordinates (%q, %q, %q)",
				res.Rows+res.Skipped, row[mapping.X], row[mapping.Y], row[mapping.T])
		}
		r := data.Row{Pos: geo.Vec{x, y, tval}, Num: map[string]float64{}, Str: map[string]string{}}
		for _, f := range schema.Fields {
			if f.Name == mapping.X || f.Name == mapping.Y || f.Name == mapping.T {
				continue
			}
			v, present := row[f.Name]
			if !present {
				continue
			}
			switch f.Type {
			case NumberField:
				if fv, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
					r.Num[f.Name] = fv
				}
			case TimeField:
				if tv, ok := parseTime(v); ok {
					r.Num[f.Name] = tv
				}
			default:
				r.Str[f.Name] = v
			}
		}
		ds.Append(r)
		res.Rows++
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
