package connector

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSVSource reads delimiter-separated text with a header row — the paper's
// "excel spreadsheets and text files" import path.
type CSVSource struct {
	name  string
	open  func() (io.Reader, error)
	comma rune
}

// NewCSVSource returns a CSV source. open is called once per scan so the
// source can be read multiple times (discovery then import).
func NewCSVSource(name string, comma rune, open func() (io.Reader, error)) *CSVSource {
	return &CSVSource{name: name, open: open, comma: comma}
}

// Name implements Source.
func (s *CSVSource) Name() string { return s.name }

// Rows implements Source.
func (s *CSVSource) Rows(fn func(map[string]string) error) error {
	r, err := s.open()
	if err != nil {
		return fmt.Errorf("connector: opening %q: %w", s.name, err)
	}
	cr := csv.NewReader(r)
	cr.Comma = s.comma
	cr.FieldsPerRecord = -1
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err == io.EOF {
		return fmt.Errorf("connector: source %q is empty", s.name)
	}
	if err != nil {
		return fmt.Errorf("connector: reading header of %q: %w", s.name, err)
	}
	for lineNo := 2; ; lineNo++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("connector: %q line %d: %w", s.name, lineNo, err)
		}
		row := make(map[string]string, len(header))
		for i, h := range header {
			if i < len(rec) {
				row[strings.TrimSpace(h)] = rec[i]
			}
		}
		if err := fn(row); err != nil {
			return err
		}
	}
}

// JSONLSource reads one JSON object per line — the MongoDB-style import
// path. Nested objects are flattened with dotted keys.
type JSONLSource struct {
	name string
	open func() (io.Reader, error)
}

// NewJSONLSource returns a JSON-lines source.
func NewJSONLSource(name string, open func() (io.Reader, error)) *JSONLSource {
	return &JSONLSource{name: name, open: open}
}

// Name implements Source.
func (s *JSONLSource) Name() string { return s.name }

// Rows implements Source.
func (s *JSONLSource) Rows(fn func(map[string]string) error) error {
	r, err := s.open()
	if err != nil {
		return fmt.Errorf("connector: opening %q: %w", s.name, err)
	}
	dec := json.NewDecoder(r)
	for lineNo := 1; ; lineNo++ {
		var obj map[string]any
		if err := dec.Decode(&obj); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("connector: %q object %d: %w", s.name, lineNo, err)
		}
		row := make(map[string]string, len(obj))
		flatten("", obj, row)
		if err := fn(row); err != nil {
			return err
		}
	}
}

// flatten converts nested JSON into dotted string keys.
func flatten(prefix string, obj map[string]any, out map[string]string) {
	for k, v := range obj {
		key := k
		if prefix != "" {
			key = prefix + "." + k
		}
		switch val := v.(type) {
		case map[string]any:
			flatten(key, val, out)
		case string:
			out[key] = val
		case float64:
			out[key] = strconv.FormatFloat(val, 'g', -1, 64)
		case bool:
			out[key] = strconv.FormatBool(val)
		case nil:
			out[key] = ""
		default:
			b, _ := json.Marshal(val)
			out[key] = string(b)
		}
	}
}

// SQLDumpSource parses a simplified MySQL dump: a CREATE TABLE statement
// naming the columns followed by INSERT INTO ... VALUES (...),(...);
// statements. This is the paper's MySQL import path without a live server.
type SQLDumpSource struct {
	name string
	open func() (io.Reader, error)
}

// NewSQLDumpSource returns a SQL dump source.
func NewSQLDumpSource(name string, open func() (io.Reader, error)) *SQLDumpSource {
	return &SQLDumpSource{name: name, open: open}
}

// Name implements Source.
func (s *SQLDumpSource) Name() string { return s.name }

// Rows implements Source.
func (s *SQLDumpSource) Rows(fn func(map[string]string) error) error {
	r, err := s.open()
	if err != nil {
		return fmt.Errorf("connector: opening %q: %w", s.name, err)
	}
	raw, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("connector: reading %q: %w", s.name, err)
	}
	text := string(raw)

	cols, err := parseCreateTable(text)
	if err != nil {
		return fmt.Errorf("connector: %q: %w", s.name, err)
	}

	upper := strings.ToUpper(text)
	offset := 0
	for {
		idx := strings.Index(upper[offset:], "INSERT INTO")
		if idx < 0 {
			return nil
		}
		stmtStart := offset + idx
		valIdx := strings.Index(upper[stmtStart:], "VALUES")
		if valIdx < 0 {
			return fmt.Errorf("connector: %q: INSERT without VALUES", s.name)
		}
		rest := text[stmtStart+valIdx+len("VALUES"):]
		consumed, err := parseValueTuples(rest, cols, fn)
		if err != nil {
			return fmt.Errorf("connector: %q: %w", s.name, err)
		}
		offset = stmtStart + valIdx + len("VALUES") + consumed
	}
}

// parseCreateTable extracts the column names of the first CREATE TABLE.
func parseCreateTable(text string) ([]string, error) {
	upper := strings.ToUpper(text)
	idx := strings.Index(upper, "CREATE TABLE")
	if idx < 0 {
		return nil, fmt.Errorf("no CREATE TABLE statement")
	}
	open := strings.Index(text[idx:], "(")
	if open < 0 {
		return nil, fmt.Errorf("malformed CREATE TABLE")
	}
	depth := 0
	start := idx + open
	end := -1
	for i := start; i < len(text); i++ {
		switch text[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				end = i
			}
		}
		if end >= 0 {
			break
		}
	}
	if end < 0 {
		return nil, fmt.Errorf("unbalanced CREATE TABLE parentheses")
	}
	body := text[start+1 : end]
	var cols []string
	for _, line := range strings.Split(body, ",") {
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) == 0 {
			continue
		}
		name := strings.Trim(fields[0], "`\"")
		uname := strings.ToUpper(name)
		if uname == "PRIMARY" || uname == "KEY" || uname == "UNIQUE" || uname == "INDEX" || uname == "CONSTRAINT" {
			continue
		}
		cols = append(cols, name)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("CREATE TABLE has no columns")
	}
	return cols, nil
}

// parseValueTuples parses "(v, v, ...), (v, ...) ;" and returns how many
// bytes it consumed.
func parseValueTuples(s string, cols []string, fn func(map[string]string) error) (int, error) {
	i := 0
	for {
		// Skip whitespace and separators.
		for i < len(s) && (s[i] == ' ' || s[i] == '\n' || s[i] == '\t' || s[i] == '\r' || s[i] == ',') {
			i++
		}
		if i >= len(s) || s[i] == ';' {
			if i < len(s) {
				i++
			}
			return i, nil
		}
		if s[i] != '(' {
			return i, fmt.Errorf("expected '(' at VALUES offset %d", i)
		}
		i++
		vals, consumed, err := parseTuple(s[i:])
		if err != nil {
			return i, err
		}
		i += consumed
		if len(vals) != len(cols) {
			return i, fmt.Errorf("tuple has %d values for %d columns", len(vals), len(cols))
		}
		row := make(map[string]string, len(cols))
		for j, c := range cols {
			row[c] = vals[j]
		}
		if err := fn(row); err != nil {
			return i, err
		}
	}
}

// parseTuple parses values up to the closing ')', honoring single-quoted
// strings with ” escapes.
func parseTuple(s string) ([]string, int, error) {
	var vals []string
	var cur strings.Builder
	inStr := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inStr {
			if c == '\'' {
				if i+1 < len(s) && s[i+1] == '\'' {
					cur.WriteByte('\'')
					i++
					continue
				}
				inStr = false
				continue
			}
			cur.WriteByte(c)
			continue
		}
		switch c {
		case '\'':
			inStr = true
		case ',':
			vals = append(vals, cleanSQLValue(cur.String()))
			cur.Reset()
		case ')':
			vals = append(vals, cleanSQLValue(cur.String()))
			return vals, i + 1, nil
		default:
			cur.WriteByte(c)
		}
	}
	return nil, 0, fmt.Errorf("unterminated tuple")
}

func cleanSQLValue(s string) string {
	s = strings.TrimSpace(s)
	if strings.EqualFold(s, "NULL") {
		return ""
	}
	return s
}

// KVSource reads "key<TAB>json" lines, simulating an export from a
// key-value store such as Cassandra or HBase. The key is exposed as the
// "_key" column; the JSON value is flattened like JSONLSource.
type KVSource struct {
	name string
	open func() (io.Reader, error)
}

// NewKVSource returns a key-value source.
func NewKVSource(name string, open func() (io.Reader, error)) *KVSource {
	return &KVSource{name: name, open: open}
}

// Name implements Source.
func (s *KVSource) Name() string { return s.name }

// Rows implements Source.
func (s *KVSource) Rows(fn func(map[string]string) error) error {
	r, err := s.open()
	if err != nil {
		return fmt.Errorf("connector: opening %q: %w", s.name, err)
	}
	raw, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("connector: reading %q: %w", s.name, err)
	}
	for lineNo, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		key, val, found := strings.Cut(line, "\t")
		if !found {
			return fmt.Errorf("connector: %q line %d: no tab separator", s.name, lineNo+1)
		}
		var obj map[string]any
		if err := json.Unmarshal([]byte(val), &obj); err != nil {
			return fmt.Errorf("connector: %q line %d: %w", s.name, lineNo+1, err)
		}
		row := make(map[string]string, len(obj)+1)
		flatten("", obj, row)
		row["_key"] = key
		if err := fn(row); err != nil {
			return err
		}
	}
	return nil
}
