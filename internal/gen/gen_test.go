package gen

import (
	"math"
	"testing"

	"storm/internal/geo"
)

func TestOSMDeterministic(t *testing.T) {
	a := OSM(OSMConfig{N: 1000, Seed: 1})
	b := OSM(OSMConfig{N: 1000, Seed: 1})
	if a.Len() != 1000 || b.Len() != 1000 {
		t.Fatalf("lens = %d, %d", a.Len(), b.Len())
	}
	for i := 0; i < 1000; i++ {
		if a.Pos(uint64(i)) != b.Pos(uint64(i)) {
			t.Fatal("same seed must generate identical data")
		}
	}
	c := OSM(OSMConfig{N: 1000, Seed: 2})
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Pos(uint64(i)) == c.Pos(uint64(i)) {
			same++
		}
	}
	if same > 10 {
		t.Errorf("different seeds produced %d identical positions", same)
	}
}

func TestOSMSchemaAndClustering(t *testing.T) {
	ds := OSM(OSMConfig{N: 20000, Seed: 3})
	if !ds.HasNumeric("altitude") {
		t.Fatal("missing altitude column")
	}
	// Altitude values exist and are plausible (meters).
	col, err := ds.NumericColumn("altitude")
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range col {
		if math.IsNaN(v) || v < -500 || v > 6000 {
			t.Fatalf("altitude[%d] = %v implausible", i, v)
		}
	}
	// Clustering: the cell around NYC should hold far more points than an
	// equal-sized cell in the rural plains.
	nyc := geo.NewRect(geo.Vec{-75, 39.7, 0}, geo.Vec{-73, 41.7, math.Inf(1)})
	rural := geo.NewRect(geo.Vec{-109, 44, 0}, geo.Vec{-107, 46, math.Inf(1)})
	nn, nr := 0, 0
	for i := 0; i < ds.Len(); i++ {
		p := ds.Pos(uint64(i))
		if nyc.Contains(p) {
			nn++
		}
		if rural.Contains(p) {
			nr++
		}
	}
	if nn < 5*nr || nn == 0 {
		t.Errorf("NYC cell (%d) should dominate rural cell (%d)", nn, nr)
	}
	// Altitude west of the plains exceeds the coasts on average (the
	// synthetic Rockies), giving Figure 3(b)'s query-dependent averages.
	var west, east float64
	var wc, ec int
	for i := 0; i < ds.Len(); i++ {
		p := ds.Pos(uint64(i))
		if p.X() > -110 && p.X() < -102 {
			west += col[i]
			wc++
		}
		if p.X() > -80 && p.X() < -70 {
			east += col[i]
			ec++
		}
	}
	if wc == 0 || ec == 0 {
		t.Fatal("empty strips")
	}
	if west/float64(wc) <= east/float64(ec) {
		t.Error("mountain strip should be higher than east coast strip")
	}
}

func TestStations(t *testing.T) {
	ds := Stations(StationsConfig{Stations: 200, ReadingsPerStation: 24, Seed: 4})
	if ds.Len() != 200*24 {
		t.Fatalf("len = %d", ds.Len())
	}
	if !ds.HasNumeric("temp") || !ds.HasString("station") {
		t.Fatal("missing columns")
	}
	// Readings of one station share a location.
	stations, _ := ds.StringColumn("station")
	locs := make(map[string]geo.Vec)
	for i := 0; i < ds.Len(); i++ {
		p := ds.Pos(uint64(i))
		key := stations[i]
		if prev, ok := locs[key]; ok {
			if prev.X() != p.X() || prev.Y() != p.Y() {
				t.Fatalf("station %s moved", key)
			}
		} else {
			locs[key] = p
		}
	}
	if len(locs) != 200 {
		t.Errorf("distinct stations = %d", len(locs))
	}
	// Southern stations are warmer on average than northern ones.
	temps, _ := ds.NumericColumn("temp")
	var south, north float64
	var sc, nc int
	for i := 0; i < ds.Len(); i++ {
		lat := ds.Pos(uint64(i)).Y()
		switch {
		case lat < 32:
			south += temps[i]
			sc++
		case lat > 44:
			north += temps[i]
			nc++
		}
	}
	if sc > 0 && nc > 0 && south/float64(sc) <= north/float64(nc) {
		t.Error("south should be warmer than north")
	}
}

func TestTweets(t *testing.T) {
	ds, truth := Tweets(TweetsConfig{N: 5000, Users: 50, Seed: 5, Snowstorm: true})
	if ds.Len() != 5000 {
		t.Fatalf("len = %d", ds.Len())
	}
	if !ds.HasString("user") || !ds.HasString("text") {
		t.Fatal("missing columns")
	}
	if len(truth) == 0 || len(truth) > 50 {
		t.Fatalf("trajectories = %d", len(truth))
	}
	// Trajectories are time-ordered and total tweet count matches.
	total := 0
	for user, path := range truth {
		total += len(path)
		for i := 1; i < len(path); i++ {
			if path[i].T() < path[i-1].T() {
				t.Fatalf("user %s trajectory not time-ordered", user)
			}
		}
	}
	if total != 5000 {
		t.Errorf("trajectory points = %d", total)
	}
	// Timestamps span the configured duration.
	var minT, maxT = math.Inf(1), math.Inf(-1)
	for i := 0; i < ds.Len(); i++ {
		tt := ds.Pos(uint64(i)).T()
		minT = math.Min(minT, tt)
		maxT = math.Max(maxT, tt)
	}
	if minT < 0 || maxT > 30*86400 {
		t.Errorf("timestamps outside [0, 30d]: [%v, %v]", minT, maxT)
	}
}

func TestTweetsSnowstormVocabulary(t *testing.T) {
	ds, _ := Tweets(TweetsConfig{N: 40000, Users: 400, Seed: 6, Snowstorm: true})
	texts, _ := ds.StringColumn("text")
	atlanta := geo.NewRect(geo.Vec{-85.4, 32.7, 10 * 86400}, geo.Vec{-83.4, 34.7, 13 * 86400})
	inSnow, inOther := 0, 0
	outSnow, outOther := 0, 0
	for i := 0; i < ds.Len(); i++ {
		p := ds.Pos(uint64(i))
		isSnow := false
		for _, w := range []string{"snow", "ice", "outage", "storm"} {
			if contains(texts[i], w) {
				isSnow = true
				break
			}
		}
		if atlanta.Contains(p) {
			if isSnow {
				inSnow++
			} else {
				inOther++
			}
		} else {
			if isSnow {
				outSnow++
			} else {
				outOther++
			}
		}
	}
	if inSnow+inOther == 0 {
		t.Fatal("no tweets in the Atlanta window")
	}
	inRate := float64(inSnow) / float64(inSnow+inOther)
	outRate := float64(outSnow) / float64(outSnow+outOther+1)
	if inRate < 0.5 || inRate < 5*outRate {
		t.Errorf("snowstorm vocabulary rate in window %v vs outside %v", inRate, outRate)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestUniform(t *testing.T) {
	r := geo.Range{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10, MinT: 0, MaxT: 100}
	ds := Uniform(2000, 7, r)
	if ds.Len() != 2000 {
		t.Fatalf("len = %d", ds.Len())
	}
	rect := r.Rect()
	for i := 0; i < ds.Len(); i++ {
		if !rect.Contains(ds.Pos(uint64(i))) {
			t.Fatalf("point %d outside range", i)
		}
	}
	col, _ := ds.NumericColumn("value")
	var sum float64
	for _, v := range col {
		sum += v
	}
	if mean := sum / float64(len(col)); math.Abs(mean-100) > 2 {
		t.Errorf("value mean = %v, want ~100", mean)
	}
}

func TestUniformInfiniteTimeBounds(t *testing.T) {
	ds := Uniform(100, 8, geo.SpatialRange(0, 0, 1, 1))
	for i := 0; i < ds.Len(); i++ {
		tt := ds.Pos(uint64(i)).T()
		if math.IsInf(tt, 0) || math.IsNaN(tt) {
			t.Fatal("infinite time bounds must be clamped")
		}
	}
}
