// Package gen produces the synthetic data sets that stand in for the
// paper's real-world sources (full OpenStreetMap, the MesoWest measurement
// network, and a live Twitter feed), which are unavailable offline. Each
// generator mirrors the schema and the statistical structure that the
// corresponding STORM experiment depends on; DESIGN.md §1 documents the
// substitution rationale.
//
// All generators are deterministic given a seed.
package gen

import (
	"fmt"
	"math"

	"storm/internal/data"
	"storm/internal/geo"
	"storm/internal/stats"
)

// A city anchors clustered generation: a center with a population weight
// and a spatial spread. The default set loosely mirrors large US metros in
// (lon, lat) space, which keeps the demo queries readable ("zoom into Salt
// Lake City").
type City struct {
	Name     string
	Lon, Lat float64
	Weight   float64
	Spread   float64 // standard deviation in degrees
}

// DefaultCities returns the built-in city set.
func DefaultCities() []City {
	return []City{
		{"new-york", -74.0, 40.7, 10, 0.4},
		{"los-angeles", -118.2, 34.1, 8, 0.5},
		{"chicago", -87.6, 41.9, 6, 0.35},
		{"houston", -95.4, 29.8, 5, 0.4},
		{"atlanta", -84.4, 33.7, 5, 0.35},
		{"salt-lake-city", -111.9, 40.8, 3, 0.25},
		{"seattle", -122.3, 47.6, 4, 0.3},
		{"miami", -80.2, 25.8, 4, 0.3},
		{"denver", -105.0, 39.7, 3, 0.3},
		{"boston", -71.1, 42.4, 4, 0.25},
	}
}

// USABounds is the rough conterminous-US bounding box used by all
// generators, in (lon, lat).
var USABounds = struct{ MinLon, MinLat, MaxLon, MaxLat float64 }{
	MinLon: -125, MinLat: 24, MaxLon: -66, MaxLat: 50,
}

// OSMConfig controls the OSM-like generator.
type OSMConfig struct {
	N    int
	Seed int64
	// ClusterFraction of points are drawn around cities, the rest
	// uniform background — mirroring OSM's road-network density skew.
	ClusterFraction float64 // default 0.75
	Cities          []City
}

// OSM generates an OSM-node-like dataset: clustered (lon, lat) points with
// an "altitude" numeric attribute that varies smoothly with position plus
// noise. altitude is the attribute the paper's Figure 3(b) aggregates.
func OSM(cfg OSMConfig) *data.Dataset {
	if cfg.ClusterFraction == 0 {
		cfg.ClusterFraction = 0.75
	}
	if cfg.Cities == nil {
		cfg.Cities = DefaultCities()
	}
	rng := stats.NewRNG(cfg.Seed)
	cityAlias := cityAlias(cfg.Cities)

	ds := data.NewDataset("osm")
	ds.AddNumericColumn("altitude")

	for i := 0; i < cfg.N; i++ {
		var lon, lat float64
		if rng.Bernoulli(cfg.ClusterFraction) {
			c := cfg.Cities[cityAlias.Draw(rng)]
			lon = c.Lon + rng.NormFloat64()*c.Spread
			lat = c.Lat + rng.NormFloat64()*c.Spread
		} else {
			lon = rng.Uniform(USABounds.MinLon, USABounds.MaxLon)
			lat = rng.Uniform(USABounds.MinLat, USABounds.MaxLat)
		}
		t := rng.Uniform(0, 86400*365) // timestamps across one year
		id := ds.AppendFast(geo.Vec{lon, lat, t})
		ds.SetNumeric("altitude", id, altitudeAt(lon, lat)+rng.NormFloat64()*30)
	}
	return ds
}

// altitudeAt is a smooth synthetic elevation model: higher in the mountain
// west, low near the coasts, with gentle ripples so averages vary by query
// region the way real OSM altitude does.
func altitudeAt(lon, lat float64) float64 {
	// A broad ridge centered on the Rockies (~lon -106).
	ridge := 2200 * math.Exp(-((lon+106)*(lon+106))/(2*36))
	// Appalachian bump (~lon -80).
	app := 600 * math.Exp(-((lon+80)*(lon+80))/(2*16))
	ripple := 120*math.Sin(lon/2.5) + 90*math.Cos(lat/1.8)
	base := 150 + 18*(lat-24)
	return base + ridge + app + ripple
}

func cityAlias(cities []City) *stats.Alias {
	w := make([]float64, len(cities))
	for i, c := range cities {
		w[i] = c.Weight
	}
	a, err := stats.NewAlias(w)
	if err != nil {
		panic(fmt.Sprintf("gen: invalid city weights: %v", err))
	}
	return a
}

// StationsConfig controls the MesoWest-like weather network generator.
type StationsConfig struct {
	Stations int // number of stations (the paper cites ~40,000)
	// ReadingsPerStation is the number of time-stamped readings each
	// station contributes.
	ReadingsPerStation int
	Seed               int64
	Cities             []City
	// ColdSnap injects the Atlanta snowstorm anomaly matching the tweet
	// generator's event: stations near Atlanta read ~15°C colder during
	// days 10–13 (the paper's cross-source confirmation scenario).
	ColdSnap bool
}

// Stations generates a MesoWest-like measurement dataset: fixed station
// locations, each emitting hourly temperature readings with latitude,
// seasonal and diurnal structure plus noise. Columns: "temp" (°C),
// "station" (string id).
func Stations(cfg StationsConfig) *data.Dataset {
	if cfg.Cities == nil {
		cfg.Cities = DefaultCities()
	}
	rng := stats.NewRNG(cfg.Seed)
	alias := cityAlias(cfg.Cities)

	ds := data.NewDataset("mesowest")
	ds.AddNumericColumn("temp")
	ds.AddStringColumn("station")

	for s := 0; s < cfg.Stations; s++ {
		var lon, lat float64
		if rng.Bernoulli(0.6) {
			c := cfg.Cities[alias.Draw(rng)]
			lon = c.Lon + rng.NormFloat64()*c.Spread*2
			lat = c.Lat + rng.NormFloat64()*c.Spread*2
		} else {
			lon = rng.Uniform(USABounds.MinLon, USABounds.MaxLon)
			lat = rng.Uniform(USABounds.MinLat, USABounds.MaxLat)
		}
		name := fmt.Sprintf("st-%05d", s)
		start := rng.Uniform(0, 3600)
		for r := 0; r < cfg.ReadingsPerStation; r++ {
			t := start + float64(r)*3600 // hourly
			id := ds.AppendFast(geo.Vec{lon, lat, t})
			temp := temperatureAt(lat, t) + rng.NormFloat64()*2
			if cfg.ColdSnap && t >= 10*86400 && t <= 13*86400 &&
				math.Abs(lon-(-84.4)) < 1.5 && math.Abs(lat-33.7) < 1.5 {
				temp -= 15
			}
			ds.SetNumeric("temp", id, temp)
			ds.SetString("station", id, name)
		}
	}
	return ds
}

// temperatureAt models temperature as latitude gradient + seasonal cycle +
// diurnal cycle (t in seconds from Jan 1).
func temperatureAt(lat, t float64) float64 {
	day := t / 86400
	seasonal := -12 * math.Cos(2*math.Pi*day/365)
	diurnal := 5 * math.Sin(2*math.Pi*(t/86400-0.3))
	return 35 - 0.8*(lat-24) + seasonal + diurnal
}

// TweetsConfig controls the Twitter-like generator.
type TweetsConfig struct {
	N     int
	Users int
	Seed  int64
	// Duration is the covered time span in seconds (default 30 days).
	Duration float64
	Cities   []City
	// Snowstorm injects the paper's Figure 6(b) scenario: tweets near
	// Atlanta within the event window carry snowstorm vocabulary.
	Snowstorm bool
	// SnowstormStart/End bound the event window in seconds (defaults
	// cover days 10–13 of the duration).
	SnowstormStart, SnowstormEnd float64
}

// Tweet topic vocabularies; tweets mix 3–8 words from their topic.
var topics = map[string][]string{
	"daily": {"coffee", "work", "morning", "traffic", "lunch", "weekend",
		"tired", "home", "gym", "sleep", "meeting", "friday"},
	"sports": {"game", "team", "win", "score", "playoffs", "coach",
		"season", "ball", "fans", "stadium", "championship"},
	"food": {"pizza", "dinner", "restaurant", "delicious", "recipe",
		"burger", "tacos", "brunch", "dessert", "cooking"},
	"positive": {"love", "great", "happy", "awesome", "beautiful", "fun",
		"amazing", "excited", "best", "thanks"},
	"snowstorm": {"snow", "ice", "outage", "shit", "hell", "why", "stuck",
		"cold", "power", "roads", "closed", "storm", "frozen", "cancelled"},
}

// Tweets generates a Twitter-like dataset: users anchored to home cities
// move by random walk and emit time-stamped, geo-tagged short texts.
// Columns: "user" (string), "text" (string). The generator also returns
// the ground-truth trajectory of every user for the Figure 6(a) experiment.
func Tweets(cfg TweetsConfig) (*data.Dataset, map[string][]geo.Vec) {
	if cfg.Duration == 0 {
		cfg.Duration = 30 * 86400
	}
	if cfg.Users == 0 {
		cfg.Users = 1 + cfg.N/200
	}
	if cfg.Cities == nil {
		cfg.Cities = DefaultCities()
	}
	if cfg.Snowstorm && cfg.SnowstormEnd == 0 {
		cfg.SnowstormStart = 10 * 86400
		cfg.SnowstormEnd = 13 * 86400
	}
	rng := stats.NewRNG(cfg.Seed)
	alias := cityAlias(cfg.Cities)
	topicNames := []string{"daily", "sports", "food", "positive"}

	ds := data.NewDataset("tweets")
	ds.AddStringColumn("user")
	ds.AddStringColumn("text")

	type userState struct {
		name     string
		lon, lat float64
		city     City
	}
	users := make([]*userState, cfg.Users)
	for u := range users {
		c := cfg.Cities[alias.Draw(rng)]
		users[u] = &userState{
			name: fmt.Sprintf("user-%05d", u),
			lon:  c.Lon + rng.NormFloat64()*c.Spread,
			lat:  c.Lat + rng.NormFloat64()*c.Spread,
			city: c,
		}
	}
	truth := make(map[string][]geo.Vec, cfg.Users)

	// Tweets are generated in time order; each tweet advances its
	// author's random walk, so a user's tweets trace a trajectory.
	for i := 0; i < cfg.N; i++ {
		t := cfg.Duration * float64(i) / float64(cfg.N)
		u := users[rng.Intn(len(users))]
		// Random walk with mild pull back toward the home city.
		u.lon += rng.NormFloat64()*0.03 + 0.02*(u.city.Lon-u.lon)
		u.lat += rng.NormFloat64()*0.03 + 0.02*(u.city.Lat-u.lat)
		pos := geo.Vec{u.lon, u.lat, t}

		topic := topicNames[rng.Intn(len(topicNames))]
		if cfg.Snowstorm && t >= cfg.SnowstormStart && t <= cfg.SnowstormEnd &&
			math.Abs(u.lon-(-84.4)) < 1.0 && math.Abs(u.lat-33.7) < 1.0 &&
			rng.Bernoulli(0.8) {
			topic = "snowstorm"
		}
		words := topics[topic]
		nw := 3 + rng.Intn(6)
		text := ""
		for w := 0; w < nw; w++ {
			if w > 0 {
				text += " "
			}
			text += words[rng.Intn(len(words))]
		}

		id := ds.AppendFast(pos)
		ds.SetString("user", id, u.name)
		ds.SetString("text", id, text)
		truth[u.name] = append(truth[u.name], pos)
	}
	return ds, truth
}

// Uniform generates n uniform points in the given range with a single
// numeric attribute "value" ~ N(100, 20). Used by micro-benchmarks and
// tests that want a structureless baseline.
func Uniform(n int, seed int64, r geo.Range) *data.Dataset {
	rng := stats.NewRNG(seed)
	ds := data.NewDataset("uniform")
	ds.AddNumericColumn("value")
	minT, maxT := r.MinT, r.MaxT
	if math.IsInf(minT, -1) {
		minT = 0
	}
	if math.IsInf(maxT, 1) {
		maxT = 1000
	}
	for i := 0; i < n; i++ {
		id := ds.AppendFast(geo.Vec{
			rng.Uniform(r.MinX, r.MaxX),
			rng.Uniform(r.MinY, r.MaxY),
			rng.Uniform(minT, maxT),
		})
		ds.SetNumeric("value", id, 100+rng.NormFloat64()*20)
	}
	return ds
}
