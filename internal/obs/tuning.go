package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// TuningHistogram is a log-scaled histogram whose range grows to cover
// its observations: bucket bounds start as a geometric ladder (ratio 2)
// above a floor, and when a value lands beyond the top bound the
// histogram rescales — adjacent buckets merge pairwise (their counts add
// exactly, since merged bounds are a subset of the old ones) and the
// freed upper half extends the ladder by successive doublings. Rescaling
// happens *before* the triggering value is recorded, so every finite
// observation lands in a real bucket and the top bucket never saturates
// the way a fixed-bound histogram's overflow bucket does on latency
// spikes or early-query CI widths.
//
// Observe stays allocation-free: the fast path is a read-locked binary
// search plus atomic adds (any number of concurrent writers), and only a
// rescale — a handful per histogram lifetime, since each one multiplies
// the covered range by 2^(buckets/2) — takes the write lock.
type TuningHistogram struct {
	mu     sync.RWMutex
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; overflow holds only +Inf observations
	count  atomic.Uint64
	sum    Float
	grown  atomic.Uint64
}

// NewTuningHistogram returns a self-tuning histogram whose initial
// buckets double from lo (the finest bound; must be positive) for an
// even number of buckets (odd counts are rounded up, minimum 4).
func NewTuningHistogram(lo float64, buckets int) *TuningHistogram {
	if !(lo > 0) {
		lo = 1
	}
	if buckets < 4 {
		buckets = 4
	}
	if buckets%2 != 0 {
		buckets++
	}
	bounds := make([]float64, buckets)
	b := lo
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return &TuningHistogram{bounds: bounds, counts: make([]atomic.Uint64, buckets+1)}
}

// locate returns the bucket index of v (first bound >= v); ok is false
// when v exceeds every bound. Caller holds mu (either side).
func (h *TuningHistogram) locate(v float64) (int, bool) {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(h.bounds)
}

// Observe records one value, rescaling first if v lies beyond the
// current range. No-op on a nil receiver; NaN is ignored.
func (h *TuningHistogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	if math.IsInf(v, 1) {
		// +Inf goes straight to the overflow bucket — rescaling toward it
		// would balloon the bounds to +Inf and ruin the ladder for every
		// later finite observation.
		h.mu.RLock()
		h.counts[len(h.counts)-1].Add(1)
		h.count.Add(1)
		h.mu.RUnlock()
		return
	}
	h.mu.RLock()
	if idx, ok := h.locate(v); ok {
		h.counts[idx].Add(1)
		h.count.Add(1)
		h.sum.Add(v)
		h.mu.RUnlock()
		return
	}
	h.mu.RUnlock()
	h.mu.Lock()
	// Re-check under the write lock: a concurrent rescale may already
	// cover v. Doubling reaches the float range quickly (the top bound
	// saturates to +Inf and the loop stops), so +Inf observations are the
	// only ones the overflow bucket ever holds.
	for h.bounds[len(h.bounds)-1] < v && !math.IsInf(h.bounds[len(h.bounds)-1], 1) {
		h.rescale()
	}
	idx, ok := h.locate(v)
	if !ok {
		idx = len(h.counts) - 1
	}
	h.counts[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	h.mu.Unlock()
}

// rescale merges adjacent bucket pairs into the lower half (exact: the
// surviving bounds are a subset of the old ladder) and extends the upper
// half by successive doublings. Caller holds mu for writing.
func (h *TuningHistogram) rescale() {
	n := len(h.bounds)
	half := n / 2
	for i := 0; i < half; i++ {
		merged := h.counts[2*i].Load() + h.counts[2*i+1].Load()
		h.bounds[i] = h.bounds[2*i+1]
		h.counts[i].Store(merged)
	}
	for i := half; i < n; i++ {
		h.bounds[i] = h.bounds[i-1] * 2
		h.counts[i].Store(0)
	}
	h.grown.Add(1)
}

// Rescales returns how many times the histogram has rescaled; zero on a
// nil receiver.
func (h *TuningHistogram) Rescales() uint64 {
	if h == nil {
		return 0
	}
	return h.grown.Load()
}

// Snapshot copies the histogram's current state; empty on a nil
// receiver. Bounds are copied (unlike Histogram's, they mutate).
func (h *TuningHistogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Value(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// MetricValue implements Var.
func (h *TuningHistogram) MetricValue() any {
	if h == nil {
		return HistogramSnapshot{}
	}
	return h.Snapshot()
}
