// Package obs is STORM's observability layer: allocation-free atomic
// counters, gauges, floats, and fixed-bucket histograms, collected into a
// Registry that renders expvar-format JSON snapshots.
//
// The package exists because STORM's value proposition is *online*
// reasoning — operators watch confidence intervals tighten and stop when
// the estimate is good enough — so convergence rate, sampler throughput,
// buffer-pool behaviour, and shard fan-out latency must be observable on a
// live system, not reconstructed from benchmark logs after the fact.
//
// # Design rules
//
//   - Hot-path writes are single atomic operations (Counter.Add,
//     Gauge.Add, Histogram.Observe); no locks, no allocation, no
//     formatting. Reads (Snapshot, WriteJSON) are the cold scrape path
//     and may allocate freely.
//   - Every mutating method is nil-receiver-safe and becomes a no-op on a
//     nil metric. Instrumented code therefore never branches on "are
//     metrics enabled": it unconditionally calls m.Add(1) and pays one
//     predictable nil check when metrics are off. A nil *Registry hands
//     out nil metrics, so disabling observability is a single nil at the
//     top of the stack (engine.Config.NoMetrics).
//   - Snapshot semantics under the concurrency model of PR 1: metrics are
//     written from any number of query goroutines while snapshot readers
//     run concurrently. Individual fields are atomically consistent;
//     cross-field consistency (e.g. a histogram's count vs its sum) is
//     best-effort, which is the standard contract of scrape-based metric
//     systems and is pinned by TestConcurrentMutation under -race.
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric. The zero value is
// ready to use; a nil *Counter is a no-op on writes and reads as zero.
type Counter struct {
	v atomic.Uint64
}

// NewCounter returns a fresh counter starting at zero.
func NewCounter() *Counter { return &Counter{} }

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; zero on a nil receiver.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// MetricValue implements Var.
func (c *Counter) MetricValue() any { return c.Value() }

// Gauge is an instantaneous int64 metric (a level, not a rate): active
// queries, open streams, pool residency. A nil *Gauge is a no-op on
// writes and reads as zero.
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns a fresh gauge starting at zero.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores an absolute value. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (negative deltas decrease it). No-op on a
// nil receiver.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current level; zero on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// MetricValue implements Var.
func (g *Gauge) MetricValue() any { return g.Value() }

// Float is an atomic float64 metric, for derived values (rates, ratios)
// published by cold paths such as the benchmark harness. A nil *Float is
// a no-op on writes and reads as zero.
type Float struct {
	bits atomic.Uint64
}

// NewFloat returns a fresh float metric starting at zero.
func NewFloat() *Float { return &Float{} }

// Set stores an absolute value. No-op on a nil receiver.
func (f *Float) Set(v float64) {
	if f == nil {
		return
	}
	f.bits.Store(math.Float64bits(v))
}

// Add accumulates delta with a compare-and-swap loop. No-op on a nil
// receiver.
func (f *Float) Add(delta float64) {
	if f == nil {
		return
	}
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value; zero on a nil receiver.
func (f *Float) Value() float64 {
	if f == nil {
		return 0
	}
	return math.Float64frombits(f.bits.Load())
}

// MetricValue implements Var.
func (f *Float) MetricValue() any { return f.Value() }

// Histogram is a fixed-bucket distribution metric. Bucket i counts
// observations v with v <= bounds[i] (and v > bounds[i-1]); one overflow
// bucket counts v > bounds[len-1]. Bounds are fixed at construction, so
// Observe is a binary search plus two atomic adds — allocation-free and
// safe for any number of concurrent writers. A nil *Histogram is a no-op
// on writes and snapshots as empty.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Uint64
	sum    Float
}

// NewHistogram returns a histogram over the given ascending upper bounds.
// The bounds slice is copied; an empty bounds slice yields a histogram
// with a single overflow bucket (count/sum only).
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; equality lands in the
	// bucket (upper bounds are inclusive, the Prometheus "le" convention).
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// Bounds[i] is the inclusive upper bound of Counts[i]; Counts has one
// extra overflow entry for observations above the last bound.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Mean returns the mean observed value, or zero when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Snapshot copies the histogram's current state; empty on a nil receiver.
// Each field is read atomically, so a snapshot racing writers is
// internally monotone (no bucket count ever appears to decrease) though
// Count may trail or lead the bucket total by in-flight observations.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds, // immutable after construction
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Value(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// MetricValue implements Var.
func (h *Histogram) MetricValue() any {
	if h == nil {
		return HistogramSnapshot{}
	}
	return h.Snapshot()
}

// LatencyBucketsMS is the default bucket layout for millisecond latency
// histograms: roughly 2.5x steps from 100µs to 10s, matching the range
// between a warm in-memory batch pull and a cold distributed fan-out.
var LatencyBucketsMS = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// CIWidthBuckets is the default bucket layout for relative CI-width
// histograms: the interesting operator thresholds (10%, 5%, 1%, ...)
// appear as exact bucket bounds so milestone counts are readable straight
// off the snapshot.
var CIWidthBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1}

// BatchSizeBuckets is the default bucket layout for sampler batch-size
// histograms, matching the engine's adaptive 16 → 1024 pull growth.
var BatchSizeBuckets = []float64{16, 32, 64, 128, 256, 512, 1024}
