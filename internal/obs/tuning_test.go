package obs_test

import (
	"math"
	"sync"
	"testing"

	"storm/internal/obs"
)

func TestTuningHistogramBasics(t *testing.T) {
	h := obs.NewTuningHistogram(1, 8)
	s := h.Snapshot()
	if len(s.Bounds) != 8 || len(s.Counts) != 9 {
		t.Fatalf("want 8 bounds / 9 counts, got %d / %d", len(s.Bounds), len(s.Counts))
	}
	for i, want := range []float64{1, 2, 4, 8, 16, 32, 64, 128} {
		if s.Bounds[i] != want {
			t.Fatalf("bound[%d] = %v, want %v", i, s.Bounds[i], want)
		}
	}
	for _, v := range []float64{0.5, 1, 3, 100} {
		h.Observe(v)
	}
	s = h.Snapshot()
	if s.Count != 4 || s.Sum != 104.5 {
		t.Fatalf("count/sum = %d/%v, want 4/104.5", s.Count, s.Sum)
	}
	// 0.5 and 1 share bucket 0 (bound 1); 3 lands in bucket 2 (bound 4);
	// 100 in bucket 7 (bound 128).
	if s.Counts[0] != 2 || s.Counts[2] != 1 || s.Counts[7] != 1 {
		t.Fatalf("unexpected bucket layout: %v", s.Counts)
	}
	if h.Rescales() != 0 {
		t.Fatalf("no rescale expected, got %d", h.Rescales())
	}
}

func TestTuningHistogramRescale(t *testing.T) {
	h := obs.NewTuningHistogram(1, 4) // bounds 1 2 4 8
	for _, v := range []float64{1, 2, 4, 8} {
		h.Observe(v)
	}
	h.Observe(30) // beyond 8: one rescale ([1 2 4 8] -> [2 8 16 32]) covers it
	if got := h.Rescales(); got != 1 {
		t.Fatalf("rescales = %d, want 1", got)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	// No observation may ever land in the overflow bucket for finite input.
	if over := s.Counts[len(s.Counts)-1]; over != 0 {
		t.Fatalf("overflow bucket holds %d finite observations", over)
	}
	// Mass is conserved across rescales and the new top bound covers 100.
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total != 5 {
		t.Fatalf("bucket mass %d, want 5", total)
	}
	if top := s.Bounds[len(s.Bounds)-1]; top < 30 {
		t.Fatalf("top bound %v does not cover 30", top)
	}
	// After one rescale of [1 2 4 8], the merged lower half is [2 8]: the
	// four seed values pair up exactly ({1,2} under 2, {4,8} under 8), and
	// 30 lands under the new 32 bound.
	if s.Counts[0] != 2 || s.Counts[1] != 2 || s.Counts[3] != 1 {
		t.Fatalf("post-rescale layout = %v, want [2 2 0 1 0]", s.Counts)
	}
}

func TestTuningHistogramInf(t *testing.T) {
	h := obs.NewTuningHistogram(1, 4)
	h.Observe(math.Inf(1))
	h.Observe(math.NaN()) // ignored
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("count = %d, want 1 (+Inf only)", s.Count)
	}
	if over := s.Counts[len(s.Counts)-1]; over != 1 {
		t.Fatalf("+Inf must land in the overflow bucket, got counts %v", s.Counts)
	}
}

func TestTuningHistogramNil(t *testing.T) {
	var h *obs.TuningHistogram
	h.Observe(3) // must not panic
	if h.Rescales() != 0 {
		t.Fatal("nil Rescales must be 0")
	}
	if s := h.Snapshot(); s.Count != 0 || s.Bounds != nil {
		t.Fatalf("nil Snapshot must be empty, got %+v", s)
	}
	if h.MetricValue() == nil {
		t.Fatal("nil MetricValue must still return a snapshot value")
	}
}

func TestTuningHistogramConcurrent(t *testing.T) {
	h := obs.NewTuningHistogram(0.1, 8)
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := 0.05 * float64(w+1)
			for i := 0; i < per; i++ {
				h.Observe(v)
				v *= 1.01 // drift upward to force rescales mid-flight
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total != workers*per {
		t.Fatalf("bucket mass %d, want %d", total, workers*per)
	}
	if over := s.Counts[len(s.Counts)-1]; over != 0 {
		t.Fatalf("overflow bucket holds %d finite observations", over)
	}
}

func TestRegistryTuningHistogram(t *testing.T) {
	r := obs.NewRegistry()
	h := r.TuningHistogram("x.latency", 0.1, 8)
	if h == nil {
		t.Fatal("expected a histogram")
	}
	if again := r.TuningHistogram("x.latency", 99, 2); again != h {
		t.Fatal("second lookup must return the same histogram")
	}
	h.Observe(1)
	snap, ok := r.Snapshot()["x.latency"].(obs.HistogramSnapshot)
	if !ok || snap.Count != 1 {
		t.Fatalf("registry snapshot = %#v", r.Snapshot()["x.latency"])
	}
	var nilReg *obs.Registry
	if nilReg.TuningHistogram("y", 1, 4) != nil {
		t.Fatal("nil registry must hand out nil histograms")
	}
	nilReg.TuningHistogram("y", 1, 4).Observe(5) // must not panic
}
