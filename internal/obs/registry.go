package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// Var is one named metric in a Registry. MetricValue is called at scrape
// time and must return a JSON-encodable value; it may allocate (scraping
// is the cold path) but must be safe to call concurrently with writers.
type Var interface {
	MetricValue() any
}

// Func adapts a function into a Var evaluated at each scrape — the
// mechanism for re-exporting externally owned counters (an iosim.Device's
// pool stats, a distr.Cluster's network totals) as live gauges without
// double-counting them.
type Func func() any

// MetricValue implements Var.
func (f Func) MetricValue() any { return f() }

// Registry is a named collection of metrics with expvar-format JSON
// output. All methods are safe for concurrent use, and every method is
// nil-receiver-safe: a nil *Registry accepts publishes as no-ops and
// hands out nil metrics, whose writes are no-ops in turn — so an
// instrumented stack is disabled wholesale by threading a nil registry
// through it.
type Registry struct {
	mu   sync.RWMutex
	vars map[string]Var
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{vars: make(map[string]Var)}
}

// Publish registers v under name, replacing any existing var with that
// name (last write wins — re-registering a dataset or rebuilding a server
// over the same engine must not fail). No-op on a nil receiver.
func (r *Registry) Publish(name string, v Var) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.vars[name] = v
}

// Unpublish removes every var whose name equals or is prefixed by prefix
// — the teardown path for per-dataset metrics when a dataset is
// unregistered. No-op on a nil receiver.
func (r *Registry) Unpublish(prefix string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name := range r.vars {
		if name == prefix || strings.HasPrefix(name, prefix) {
			delete(r.vars, name)
		}
	}
}

// Get returns the var registered under name, or nil.
func (r *Registry) Get(name string) Var {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.vars[name]
}

// Counter returns the counter registered under name, creating and
// publishing one if absent (or if the name is held by a different metric
// type). Returns nil on a nil receiver, which disables every write
// through it.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.vars[name].(*Counter); ok {
		return c
	}
	c := NewCounter()
	r.vars[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating one if absent.
// Returns nil on a nil receiver.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.vars[name].(*Gauge); ok {
		return g
	}
	g := NewGauge()
	r.vars[name] = g
	return g
}

// Float returns the float metric registered under name, creating one if
// absent. Returns nil on a nil receiver.
func (r *Registry) Float(name string) *Float {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.vars[name].(*Float); ok {
		return f
	}
	f := NewFloat()
	r.vars[name] = f
	return f
}

// Histogram returns the histogram registered under name, creating one
// over bounds if absent (an existing histogram keeps its original
// bounds). Returns nil on a nil receiver.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.vars[name].(*Histogram); ok {
		return h
	}
	h := NewHistogram(bounds)
	r.vars[name] = h
	return h
}

// TuningHistogram returns the self-tuning histogram registered under
// name, creating one if absent with buckets doubling from lo (an
// existing one keeps its state). Returns nil on a nil receiver.
func (r *Registry) TuningHistogram(name string, lo float64, buckets int) *TuningHistogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.vars[name].(*TuningHistogram); ok {
		return h
	}
	h := NewTuningHistogram(lo, buckets)
	r.vars[name] = h
	return h
}

// PublishFunc registers a scrape-time callback under name. No-op on a nil
// receiver.
func (r *Registry) PublishFunc(name string, f func() any) {
	r.Publish(name, Func(f))
}

// Names returns the registered metric names in sorted order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.vars))
	for n := range r.vars {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Snapshot evaluates every var and returns a name → value map. Funcs run
// outside the registry lock, so a Func may itself take locks (e.g. read
// an iosim.Device's stats) without ordering constraints.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return map[string]any{}
	}
	r.mu.RLock()
	vars := make(map[string]Var, len(r.vars))
	for n, v := range r.vars {
		vars[n] = v
	}
	r.mu.RUnlock()
	out := make(map[string]any, len(vars))
	for n, v := range vars {
		out[n] = v.MetricValue()
	}
	return out
}

// WriteJSON renders the registry as one flat JSON object mapping metric
// name to value — the expvar wire format (the same shape /debug/vars
// serves), so any expvar-aware scraper parses it. A nil registry renders
// "{}".
func (r *Registry) WriteJSON(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	// Snapshot is a map; encoding/json sorts map keys, giving stable,
	// diffable output.
	enc.Encode(r.Snapshot())
}

// ServeHTTP implements http.Handler, serving the expvar-format snapshot —
// mount it at /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	r.WriteJSON(w)
}
