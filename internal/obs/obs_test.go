package obs

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestCounterGaugeFloatBasics(t *testing.T) {
	c := NewCounter()
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	g := NewGauge()
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	f := NewFloat()
	f.Set(1.5)
	f.Add(0.25)
	if got := f.Value(); got != 1.75 {
		t.Fatalf("float = %v, want 1.75", got)
	}
}

// TestNilMetricsAreNoOps pins the opt-out contract: every metric type and
// the registry itself must be usable as nil without panicking.
func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	c.Add(1)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter should read 0")
	}
	var g *Gauge
	g.Set(5)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge should read 0")
	}
	var f *Float
	f.Set(5)
	f.Add(1)
	if f.Value() != 0 {
		t.Fatal("nil float should read 0")
	}
	var h *Histogram
	h.Observe(1)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram should snapshot empty")
	}
	var r *Registry
	r.Publish("x", NewCounter())
	r.Unpublish("x")
	r.PublishFunc("f", func() any { return 1 })
	r.Counter("c").Add(1) // nil registry hands out nil counter
	r.Gauge("g").Set(1)
	r.Float("f2").Set(1)
	r.Histogram("h", nil).Observe(1)
	if len(r.Snapshot()) != 0 {
		t.Fatal("nil registry should snapshot empty")
	}
	if r.Names() != nil {
		t.Fatal("nil registry should have no names")
	}
	if r.Get("c") != nil {
		t.Fatal("nil registry Get should return nil")
	}
}

// TestHistogramBucketBoundaries drives values exactly at, below, and
// above each bound: upper bounds are inclusive ("le" convention) and the
// overflow bucket catches everything past the last bound.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	cases := []struct {
		v      float64
		bucket int
	}{
		{-5, 0}, {0, 0}, {1, 0}, // at-or-below first bound
		{1.0001, 1}, {10, 1}, // bound is inclusive
		{10.0001, 2}, {100, 2},
		{100.0001, 3}, {1e9, 3}, // overflow bucket
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	snap := h.Snapshot()
	want := make([]uint64, 4)
	for _, c := range cases {
		want[c.bucket]++
	}
	for i := range want {
		if snap.Counts[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, snap.Counts[i], want[i])
		}
	}
	if snap.Count != uint64(len(cases)) {
		t.Errorf("count = %d, want %d", snap.Count, len(cases))
	}
	if len(snap.Bounds) != 3 || len(snap.Counts) != 4 {
		t.Errorf("snapshot shape: %d bounds, %d counts", len(snap.Bounds), len(snap.Counts))
	}
}

func TestHistogramEmptyBounds(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(5)
	h.Observe(-5)
	snap := h.Snapshot()
	if snap.Count != 2 || snap.Counts[0] != 2 {
		t.Fatalf("degenerate histogram: %+v", snap)
	}
	if snap.Sum != 0 {
		t.Fatalf("sum = %v, want 0", snap.Sum)
	}
	if snap.Mean() != 0 {
		t.Fatalf("mean = %v, want 0", snap.Mean())
	}
}

// TestConcurrentMutation hammers every metric type from N writer
// goroutines while M readers snapshot concurrently — the PR 1 concurrency
// model (many queries, live scrapes) under -race — then checks exact
// totals once the writers are done.
func TestConcurrentMutation(t *testing.T) {
	const (
		writers   = 8
		readers   = 4
		perWriter = 5000
	)
	reg := NewRegistry()
	c := reg.Counter("c")
	g := reg.Gauge("g")
	f := reg.Float("f")
	h := reg.Histogram("h", []float64{0.25, 0.5, 0.75})

	stop := make(chan struct{})
	var rd sync.WaitGroup
	for i := 0; i < readers; i++ {
		rd.Add(1)
		go func() {
			defer rd.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := h.Snapshot()
				var total uint64
				for _, n := range snap.Counts {
					total += n
				}
				// Bucket totals and Count race independently but are
				// each monotone; a scrape may straddle an Observe.
				if diff := int64(snap.Count) - int64(total); diff > writers || diff < -writers {
					t.Errorf("histogram count %d vs bucket total %d", snap.Count, total)
					return
				}
				_ = reg.Snapshot()
				_ = c.Value() + uint64(g.Value())
			}
		}()
	}

	var wr sync.WaitGroup
	for w := 0; w < writers; w++ {
		wr.Add(1)
		go func(w int) {
			defer wr.Done()
			for i := 0; i < perWriter; i++ {
				c.Add(1)
				g.Add(1)
				g.Add(-1)
				f.Add(0.5)
				h.Observe(float64(i%4) / 4)
			}
		}(w)
	}
	wr.Wait()
	close(stop)
	rd.Wait()

	if got := c.Value(); got != writers*perWriter {
		t.Errorf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got, want := f.Value(), float64(writers*perWriter)*0.5; got != want {
		t.Errorf("float = %v, want %v", got, want)
	}
	snap := h.Snapshot()
	if snap.Count != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", snap.Count, writers*perWriter)
	}
	var total uint64
	for _, n := range snap.Counts {
		total += n
	}
	if total != snap.Count {
		t.Errorf("quiesced bucket total %d != count %d", total, snap.Count)
	}
}

// TestRegistryJSON pins the wire format: a flat JSON object (expvar
// shape) with counters/gauges as numbers and histograms as objects.
func TestRegistryJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("queries").Add(7)
	reg.Gauge("active").Set(-2)
	reg.Float("rate").Set(1.5)
	reg.Histogram("lat_ms", []float64{1, 10}).Observe(3)
	reg.PublishFunc("pool", func() any { return map[string]uint64{"hits": 9} })

	rec := httptest.NewRecorder()
	reg.ServeHTTP(rec, nil)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var got map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("output does not parse as a JSON object: %v\n%s", err, rec.Body.String())
	}
	for _, name := range []string{"queries", "active", "rate", "lat_ms", "pool"} {
		if _, ok := got[name]; !ok {
			t.Errorf("missing %q in %s", name, rec.Body.String())
		}
	}
	var q uint64
	if err := json.Unmarshal(got["queries"], &q); err != nil || q != 7 {
		t.Errorf("queries = %s, want 7 (%v)", got["queries"], err)
	}
	var hs HistogramSnapshot
	if err := json.Unmarshal(got["lat_ms"], &hs); err != nil || hs.Count != 1 {
		t.Errorf("histogram round-trip: %s (%v)", got["lat_ms"], err)
	}
}

func TestRegistryReplaceAndUnpublish(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("x.a")
	if c2 := reg.Counter("x.a"); c2 != c1 {
		t.Fatal("Counter should return the existing metric")
	}
	reg.Counter("x.b")
	reg.Counter("y.a")
	reg.Unpublish("x.")
	names := reg.Names()
	if len(names) != 1 || names[0] != "y.a" {
		t.Fatalf("after unpublish: %v", names)
	}
	// A name held by a different type is replaced, not returned.
	reg.Publish("y.a", NewGauge())
	if _, ok := reg.Get("y.a").(*Gauge); !ok {
		t.Fatal("publish should replace")
	}
	if _, ok := reg.Get("y.a").(*Counter); ok {
		t.Fatal("stale counter survived replace")
	}
	reg.Counter("y.a").Inc() // replaces the gauge
	if _, ok := reg.Get("y.a").(*Counter); !ok {
		t.Fatal("Counter should replace a differently-typed var")
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewCounter()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(LatencyBucketsMS)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1000))
	}
}

func BenchmarkNilCounterAdd(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
