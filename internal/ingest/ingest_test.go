package ingest

import (
	"errors"
	"sync"
	"testing"
	"time"

	"storm/internal/data"
	"storm/internal/obs"
)

// memSink is a Sink that records every drained batch. gate, when set,
// blocks InsertBatch until released — simulating a slow index so tests can
// hold records in the buffer deterministically.
type memSink struct {
	mu      sync.Mutex
	batches [][]data.Row
	total   int
	gate    chan struct{}
}

func (s *memSink) InsertBatch(rows []data.Row) []data.ID {
	if s.gate != nil {
		<-s.gate
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make([]data.Row, len(rows))
	copy(cp, rows)
	s.batches = append(s.batches, cp)
	ids := make([]data.ID, len(rows))
	for i := range ids {
		ids[i] = data.ID(s.total + i)
	}
	s.total += len(rows)
	return ids
}

func (s *memSink) counts() (batches, rows int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.batches), s.total
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestIngestAppendFlush(t *testing.T) {
	sink := &memSink{}
	// A huge interval and threshold: nothing drains until Flush, making
	// the buffered state observable.
	in := New(sink, Config{Shards: 4, FlushInterval: time.Hour, FlushRecords: 1 << 20})
	defer in.Close()

	const n = 1000
	for i := 0; i < n; i++ {
		if err := in.Append(rowAt(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if in.Pending() != n || in.Accepted() != n {
		t.Fatalf("pending = %d, accepted = %d, want %d buffered", in.Pending(), in.Accepted(), n)
	}
	if wm, ok := in.Watermark(); !ok || wm != n-1 {
		t.Fatalf("watermark = %v (ok=%v), want %v", wm, ok, n-1)
	}
	if _, rows := sink.counts(); rows != 0 {
		t.Fatalf("sink saw %d rows before any flush", rows)
	}

	in.Flush()
	batches, rows := sink.counts()
	if rows != n || in.Pending() != 0 {
		t.Fatalf("after flush: sink rows = %d, pending = %d, want %d / 0", rows, in.Pending(), n)
	}
	// The whole backlog drains as ONE sink call — one dataset write-lock
	// acquisition per flush is the point of batching.
	if batches != 1 {
		t.Fatalf("flush produced %d sink batches, want 1", batches)
	}
}

func TestIngestEarlyDrainOnFlushRecords(t *testing.T) {
	sink := &memSink{}
	// Idle ticker effectively off: only the FlushRecords early wake can
	// drain.
	in := New(sink, Config{Shards: 2, FlushInterval: time.Hour, FlushRecords: 16})
	defer in.Close()
	for i := 0; i < 200; i++ {
		if err := in.Append(rowAt(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "early drain", func() bool { _, rows := sink.counts(); return rows == 200 })
	if in.Pending() != 0 {
		t.Fatalf("pending = %d after drain", in.Pending())
	}
}

func TestIngestTickerDrain(t *testing.T) {
	sink := &memSink{}
	in := New(sink, Config{Shards: 2, FlushInterval: 2 * time.Millisecond, FlushRecords: 1 << 20})
	defer in.Close()
	for i := 0; i < 50; i++ {
		if err := in.Append(rowAt(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// No explicit Flush: the interval ticker alone must make the records
	// queryable.
	waitFor(t, "ticker drain", func() bool { _, rows := sink.counts(); return rows == 50 })
}

func TestIngestBackpressure(t *testing.T) {
	sink := &memSink{gate: make(chan struct{})}
	reg := obs.NewRegistry()
	in := New(sink, Config{
		Shards: 2, FlushInterval: time.Hour, FlushRecords: 1 << 20,
		MaxPending: 100, Obs: reg, Name: "bp",
	})
	defer in.Close()
	defer close(sink.gate) // let Close's final drain complete

	for i := 0; i < 100; i++ {
		if err := in.Append(rowAt(float64(i))); err != nil {
			t.Fatalf("append %d under MaxPending: %v", i, err)
		}
	}
	err := in.Append(rowAt(100))
	if !errors.Is(err, ErrBackpressure) {
		t.Fatalf("append beyond MaxPending = %v, want ErrBackpressure", err)
	}
	// The rejected record is NOT buffered and not counted as accepted.
	if in.Pending() != 100 || in.Accepted() != 100 {
		t.Fatalf("pending = %d, accepted = %d after rejection, want 100/100", in.Pending(), in.Accepted())
	}
	snap := reg.Snapshot()
	if got := snap["storm.ingest.bp.backpressure"]; got != uint64(1) {
		t.Fatalf("backpressure counter = %v, want 1", got)
	}
	if got := snap["storm.ingest.bp.pending"]; got != 100 {
		t.Fatalf("pending gauge = %v, want 100", got)
	}
}

func TestIngestCloseFlushesAndRejects(t *testing.T) {
	sink := &memSink{}
	in := New(sink, Config{Shards: 4, FlushInterval: time.Hour, FlushRecords: 1 << 20})
	for i := 0; i < 77; i++ {
		if err := in.Append(rowAt(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if _, rows := sink.counts(); rows != 77 {
		t.Fatalf("close drained %d rows, want 77", rows)
	}
	if err := in.Append(rowAt(99)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
	if err := in.Close(); err != nil {
		t.Fatalf("second close = %v, want idempotent nil", err)
	}
}

func TestIngestWindowSample(t *testing.T) {
	sink := &memSink{}
	in := New(sink, Config{
		Shards: 4, FlushInterval: time.Hour, FlushRecords: 1 << 20,
		Window: 50 * time.Second, WindowSamples: 16, Seed: 5,
	})
	defer in.Close()

	if in.WindowSample() != nil {
		t.Fatal("window sample before any record should be nil")
	}
	for i := 0; i < 200; i++ {
		if err := in.Append(rowAt(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	s := in.WindowSample()
	if len(s) != 16 {
		t.Fatalf("window sample size = %d, want k=16", len(s))
	}
	// Window = [watermark-50, watermark] = [149, 199].
	for _, r := range s {
		if r.Pos[2] < 149 || r.Pos[2] > 199 {
			t.Fatalf("window sample t=%v outside [149, 199]", r.Pos[2])
		}
	}
	if in.Window() == nil || in.Window().Added() != 200 {
		t.Fatalf("reservoir saw %v adds, want every accepted record", in.Window().Added())
	}

	// Without a configured window there is no reservoir at all.
	plain := New(&memSink{}, Config{FlushInterval: time.Hour})
	defer plain.Close()
	plain.Append(rowAt(1))
	if plain.Window() != nil || plain.WindowSample() != nil {
		t.Fatal("unwindowed ingestor grew a reservoir")
	}
}

func TestIngestConcurrentProducers(t *testing.T) {
	sink := &memSink{}
	reg := obs.NewRegistry()
	in := New(sink, Config{
		Shards: 8, FlushInterval: time.Millisecond, FlushRecords: 64,
		Window: time.Hour, WindowSamples: 32, Obs: reg, Name: "conc",
	})

	const producers, perProducer = 8, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				// Retry on backpressure like a real producer would.
				for {
					err := in.Append(rowAt(float64(p*perProducer + i)))
					if err == nil {
						break
					}
					if !errors.Is(err, ErrBackpressure) {
						t.Error(err)
						return
					}
					time.Sleep(time.Millisecond)
				}
			}
		}(p)
	}
	wg.Wait()
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}

	const n = producers * perProducer
	if in.Accepted() != n {
		t.Fatalf("accepted = %d, want %d", in.Accepted(), n)
	}
	_, rows := sink.counts()
	if rows != n {
		t.Fatalf("sink rows = %d, want every accepted record drained exactly once", rows)
	}
	// Every record reached the sink exactly once, across all batches.
	seen := make(map[float64]bool, n)
	sink.mu.Lock()
	for _, b := range sink.batches {
		for _, r := range b {
			if seen[r.Pos[2]] {
				t.Fatalf("record t=%v drained twice", r.Pos[2])
			}
			seen[r.Pos[2]] = true
		}
	}
	sink.mu.Unlock()
	if wm, ok := in.Watermark(); !ok || wm != n-1 {
		t.Fatalf("watermark = %v (ok=%v), want %v", wm, ok, float64(n-1))
	}
	snap := reg.Snapshot()
	if got := snap["storm.ingest.conc.accepted"]; got != uint64(n) {
		t.Fatalf("accepted counter = %v, want %d", got, n)
	}
	if got := snap["storm.ingest.conc.drained"]; got != uint64(n) {
		t.Fatalf("drained counter = %v, want %d", got, n)
	}
}

// TestIngestAppendBatch: the batched producer path accepts all-or-nothing,
// drains every record exactly once, and feeds the window reservoir.
func TestIngestAppendBatch(t *testing.T) {
	sink := &memSink{}
	in := New(sink, Config{
		Shards: 4, FlushInterval: time.Hour, FlushRecords: 1 << 20,
		Window: time.Hour, WindowSamples: 16, Name: "batch",
	})
	batch := make([]data.Row, 300)
	for i := range batch {
		batch[i] = rowAt(float64(i))
	}
	if err := in.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := in.AppendBatch(nil); err != nil {
		t.Fatal(err)
	}
	if got := in.Pending(); got != 300 {
		t.Fatalf("pending = %d, want 300", got)
	}
	if wm, ok := in.Watermark(); !ok || wm != 299 {
		t.Fatalf("watermark = %v/%v, want 299", wm, ok)
	}
	if in.Window().Added() != 300 {
		t.Fatalf("reservoir saw %d records, want 300", in.Window().Added())
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if _, rows := sink.counts(); rows != 300 {
		t.Fatalf("sink rows = %d, want 300", rows)
	}
	if err := in.AppendBatch(batch); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
}

// TestIngestAppendBatchBackpressure: a full buffer rejects the whole batch
// with ErrBackpressure and accepts nothing from it.
func TestIngestAppendBatchBackpressure(t *testing.T) {
	sink := &memSink{}
	in := New(sink, Config{
		Shards: 2, FlushInterval: time.Hour, FlushRecords: 1 << 20,
		MaxPending: 10, Name: "batchbp",
	})
	defer in.Close()
	first := make([]data.Row, 12)
	for i := range first {
		first[i] = rowAt(float64(i))
	}
	// Backpressure is checked on entry, so the first batch overshoots.
	if err := in.AppendBatch(first); err != nil {
		t.Fatal(err)
	}
	err := in.AppendBatch(first[:2])
	if !errors.Is(err, ErrBackpressure) {
		t.Fatalf("err = %v, want ErrBackpressure", err)
	}
	if got := in.Accepted(); got != 12 {
		t.Fatalf("accepted = %d, want 12 (rejected batch contributes nothing)", got)
	}
}
