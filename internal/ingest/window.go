package ingest

import (
	"sort"
	"sync"

	"storm/internal/data"
	"storm/internal/stats"
)

// WindowReservoir maintains an exactly uniform without-replacement sample
// of size up to k over the LIVE portion of a record stream — the records
// whose event time lies in a trailing window [cutoff, ∞) — without keeping
// the whole window in memory.
//
// # Priority sampling
//
// Every arrival is tagged with an independent Uniform(0,1) priority. At any
// instant, the k smallest-priority records among the live ones form an
// exactly uniform k-subset of the live records: priorities are i.i.d. and
// independent of the record payloads, so every live k-subset is equally
// likely to hold the k minima (ties have probability zero). Expiry needs
// no correction — dropping dead records and re-taking the k minima of the
// survivors is the same experiment run on the surviving population.
//
// # Expiry-aware pruning
//
// Keeping every live record would make the reservoir a window copy, so
// arrivals are pruned by a dominance rule: record x can be discarded as
// soon as k retained records have event time ≥ x's AND priority < x's.
// Whenever x is live under a trailing window, its k dominators (expiring no
// earlier) are live too, so x can never again be among the k smallest live
// priorities — discarding it cannot change any future sample. The rule
// compares event times, not arrival order, so bounded out-of-order streams
// keep exact uniformity (a late-arriving old record is dominated only by
// records that provably outlive it). Retained size is O(k·log(n/k)) in
// expectation for in-order streams.
//
// A WindowReservoir is internally locked; Add, Expire and Sample may be
// called concurrently.
type WindowReservoir struct {
	mu  sync.Mutex
	k   int
	rng *stats.RNG
	// items holds the retained (non-dominated, non-expired) records in
	// ascending event-time order.
	items []windowItem
	// added and pruned count arrivals and dominance-pruned discards over
	// the reservoir's lifetime (expiry is not a prune).
	added  uint64
	pruned uint64
	// pruneAt is the retained size that triggers the next dominance prune.
	// Pruning eagerly on every Add would cost O(retained) per record; the
	// doubling trigger amortizes it to O(log) comparisons per arrival while
	// keeping retained memory within 2× of the pruned skyline. Pruning is
	// purely a memory optimization — Sample is exact either way.
	pruneAt int
	// heap and tail are prune's scratch buffers (bounded max-heap and the
	// reversed survivor list), and batch is AddBatch's staging buffer;
	// all reused across calls so a sustained stream runs without
	// allocating.
	heap  []float64
	tail  []windowItem
	batch []windowItem
}

// windowItem is one retained arrival: its event time, its sampling
// priority, and the record payload.
type windowItem struct {
	t   float64
	pri float64
	row data.Row
}

// NewWindowReservoir returns a reservoir holding an exactly uniform sample
// of up to k live records. The seed drives the priority draws; a fixed
// seed makes the retained sample a deterministic function of the arrival
// sequence.
func NewWindowReservoir(k int, seed int64) *WindowReservoir {
	if k < 1 {
		k = 1
	}
	return &WindowReservoir{k: k, rng: stats.NewRNG(seed)}
}

// K returns the reservoir's sample capacity.
func (w *WindowReservoir) K() int { return w.k }

// Added returns how many records have ever been offered to the reservoir.
func (w *WindowReservoir) Added() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.added
}

// Retained returns the current number of retained records — the memory
// footprint, not the sample size (Sample returns at most K of these).
func (w *WindowReservoir) Retained() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.items)
}

// Add offers one record to the reservoir; its event time is row.Pos[2].
func (w *WindowReservoir) Add(row data.Row) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.add(row)
}

// AddBatch offers a batch of records under one lock acquisition — the
// batched producer path (Ingestor.AppendBatch). The batch is sorted by
// event time and merged into the retained list in one backward pass, so a
// chunk arriving out of order (producers racing for the append slot)
// costs one bounded merge instead of one O(retained) memmove per record.
// The sample distribution is identical to calling Add per record in
// order; only the prune cadence differs (at most once per batch).
func (w *WindowReservoir) AddBatch(rows []data.Row) {
	if len(rows) == 0 {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.added += uint64(len(rows))
	// Tag each arrival with its priority, drawing in arrival order so a
	// fixed seed yields the same priority sequence as per-record Add.
	batch := w.batch[:0]
	for i := range rows {
		batch = append(batch, windowItem{t: rows[i].Pos[2], pri: w.rng.Float64(), row: rows[i]})
	}
	w.batch = batch
	if !sort.SliceIsSorted(batch, func(a, b int) bool { return batch[a].t < batch[b].t }) {
		sort.SliceStable(batch, func(a, b int) bool { return batch[a].t < batch[b].t })
	}
	// Backward merge: only retained items with event time above the
	// batch's minimum move, so an in-order (or nearly in-order) stream
	// pays O(batch + overlap), not O(retained).
	n := len(w.items)
	w.items = append(w.items, batch...)
	i, j, k := n-1, len(batch)-1, len(w.items)-1
	for j >= 0 {
		if i >= 0 && w.items[i].t > batch[j].t {
			w.items[k] = w.items[i]
			i--
		} else {
			w.items[k] = batch[j]
			j--
		}
		k--
	}
	if len(w.items) >= w.pruneAt {
		w.prune()
	}
}

// add is Add's body. Caller holds w.mu.
func (w *WindowReservoir) add(row data.Row) {
	w.added++
	it := windowItem{t: row.Pos[2], pri: w.rng.Float64(), row: row}
	// Insert in event-time order. Arrivals are usually in order, so probe
	// the tail first and fall back to binary search for stragglers.
	n := len(w.items)
	if n == 0 || w.items[n-1].t <= it.t {
		w.items = append(w.items, it)
	} else {
		i := sort.Search(n, func(i int) bool { return w.items[i].t > it.t })
		w.items = append(w.items, windowItem{})
		copy(w.items[i+1:], w.items[i:])
		w.items[i] = it
	}
	if len(w.items) >= w.pruneAt {
		w.prune()
	}
}

// prune drops dominated items: walking from the latest event time
// backward, a max-heap tracks the k smallest priorities seen so far (all
// belonging to records expiring no earlier than the current one); once the
// heap is full, any item with priority above its maximum has k dominators
// and is discarded. Caller holds w.mu.
func (w *WindowReservoir) prune() {
	n := len(w.items)
	if n <= w.k {
		w.pruneAt = 2 * w.k
		return
	}
	heap := w.heap[:0]
	// Collect survivors back-to-front, then reverse into time order.
	tail := w.tail[:0]
	for i := n - 1; i >= 0; i-- {
		it := w.items[i]
		if len(heap) == w.k && it.pri > heap[0] {
			w.pruned++
			continue
		}
		tail = append(tail, it)
		heapPush(&heap, w.k, it.pri)
	}
	w.heap = heap
	w.tail = tail
	keep := w.items[:0]
	for i := len(tail) - 1; i >= 0; i-- {
		keep = append(keep, tail[i])
	}
	w.items = keep
	// Next prune when the skyline has doubled (floored so tiny reservoirs
	// still amortize).
	w.pruneAt = 2 * len(w.items)
	if w.pruneAt < 2*w.k {
		w.pruneAt = 2 * w.k
	}
}

// heapPush folds pri into a bounded max-heap of the k smallest values.
func heapPush(h *[]float64, k int, pri float64) {
	hs := *h
	if len(hs) < k {
		hs = append(hs, pri)
		// Sift up.
		i := len(hs) - 1
		for i > 0 {
			p := (i - 1) / 2
			if hs[p] >= hs[i] {
				break
			}
			hs[p], hs[i] = hs[i], hs[p]
			i = p
		}
		*h = hs
		return
	}
	if pri >= hs[0] {
		return
	}
	hs[0] = pri
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(hs) && hs[l] > hs[big] {
			big = l
		}
		if r < len(hs) && hs[r] > hs[big] {
			big = r
		}
		if big == i {
			break
		}
		hs[i], hs[big] = hs[big], hs[i]
		i = big
	}
	*h = hs
}

// Expire drops retained records with event time below cutoff. Safe to call
// at any cadence: Sample applies its own cutoff, so Expire is purely a
// memory release.
func (w *WindowReservoir) Expire(cutoff float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.expire(cutoff)
}

// expire trims the dead prefix. Caller holds w.mu.
func (w *WindowReservoir) expire(cutoff float64) {
	i := sort.Search(len(w.items), func(i int) bool { return w.items[i].t >= cutoff })
	if i > 0 {
		w.items = append(w.items[:0], w.items[i:]...)
	}
}

// Sample returns an exactly uniform without-replacement sample of up to K
// records with event time ≥ cutoff — the k smallest-priority live records.
// Fewer than K are returned only when fewer live records exist. The
// returned slice is freshly allocated, in arbitrary order.
func (w *WindowReservoir) Sample(cutoff float64) []data.Row {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.expire(cutoff)
	live := w.items
	if len(live) <= w.k {
		out := make([]data.Row, len(live))
		for i, it := range live {
			out[i] = it.row
		}
		return out
	}
	// k smallest priorities among the live items.
	idx := make([]int, len(live))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return live[idx[a]].pri < live[idx[b]].pri })
	out := make([]data.Row, w.k)
	for i := 0; i < w.k; i++ {
		out[i] = live[idx[i]].row
	}
	return out
}
