package ingest

import (
	"math"
	"testing"

	"storm/internal/stats"
	"storm/internal/stats/statcheck"
)

// The windowed-reservoir statistical suite (run by `make test-stats`).
//
// The claim under test is the package's headline guarantee: at any
// instant, Sample(cutoff) is an EXACTLY uniform without-replacement
// k-subset of the live records — through dominance pruning, interleaved
// expiry, and bounded out-of-order arrival. The scenario below is chosen
// to stress all three at once; the checks are chi-square inclusion
// uniformity, CI coverage of window means estimated from the sample, and
// unbiasedness of the sample mean. Seeds are fixed, so a failure is a
// regression, not noise (see the statcheck package doc for the
// false-positive budget).

const (
	// churnN records stream per trial; the final window keeps the last
	// churnWindow of them, so the live population is churnWindow records.
	churnN      = 1000
	churnWindow = 200
	// churnK is the reservoir capacity — well below the live population,
	// so Sample must actually subsample.
	churnK = 50
	// churnTrials independent seeded trials (ISSUE floor: ≥ 100).
	churnTrials = 150
)

// churnCutoff is the live window's lower edge at the end of a trial.
const churnCutoff = churnN - churnWindow

// churnStream drives one reservoir through the fixed churn scenario: the
// arrival order reverses each block of 8 (every block exercises the
// out-of-order insert path), and expiry interleaves with arrival every 96
// records (the reservoir repeatedly trims mid-stream rather than once at
// the end). The record sequence is identical across trials — only the
// reservoir's priority seed varies — so the live set is a fixed ground
// truth and inclusion counts can be aggregated across seeds.
func churnStream(seed int64) *WindowReservoir {
	w := NewWindowReservoir(churnK, seed)
	for b := 0; b < churnN; b += 8 {
		for i := b + 7; i >= b; i-- {
			w.Add(rowAt(float64(i)))
		}
		if b%96 == 0 {
			w.Expire(float64(b) - churnWindow)
		}
	}
	return w
}

// churnValue is the payload carried by record t — non-monotone in t, so
// mean estimates are not trivially right by symmetry with the time axis.
func churnValue(t float64) float64 {
	return math.Mod(t*37, 101)
}

// churnTruth is the exact mean of churnValue over the live window.
func churnTruth() float64 {
	var sum float64
	for i := churnCutoff; i < churnN; i++ {
		sum += churnValue(float64(i))
	}
	return sum / churnWindow
}

// TestStatWindowReservoirUniform aggregates, over churnTrials seeded
// trials of the churn scenario, how often each live record appears in the
// final Sample, and chi-squares the inclusion counts against uniform.
// Within one trial the k inclusions are negatively correlated (the sample
// is without replacement), which only deflates the chi-square statistic —
// the check is conservative under the null and still rejects loudly if
// pruning or expiry ever biases inclusion toward any region of the
// window (e.g. over-keeping late records, whose dominator sets are
// smaller).
func TestStatWindowReservoirUniform(t *testing.T) {
	observed := make([]int, churnWindow)
	for _, seed := range statcheck.Seeds(0xA12, churnTrials) {
		s := churnStream(seed).Sample(churnCutoff)
		if len(s) != churnK {
			t.Fatalf("seed %d: sample size = %d, want k=%d (live population %d)",
				seed, len(s), churnK, churnWindow)
		}
		for _, r := range s {
			i := int(r.Pos[2]) - churnCutoff
			if i < 0 || i >= churnWindow || r.Pos[2] != math.Trunc(r.Pos[2]) {
				t.Fatalf("seed %d: sampled t=%v outside the live window [%d, %d)",
					seed, r.Pos[2], churnCutoff, churnN)
			}
			observed[i]++
		}
	}
	// Expected inclusions per record: trials·k/L = 150·50/200 = 37.5 ≥ 5.
	statcheck.Uniform(t, "window-reservoir-inclusion", observed, statcheck.DefaultAlpha)
}

// TestStatWindowReservoirCoverage estimates the live window's mean of
// churnValue from each trial's k-sample with a t-based CI (finite
// population corrected — the sample is WOR from a window of known size)
// and checks nominal 95% coverage across trials, plus exact unbiasedness
// of the sample mean. This is the property the ingest monitor path relies
// on: an operator reading WindowSample aggregates gets honest intervals
// without touching the indexes.
func TestStatWindowReservoirCoverage(t *testing.T) {
	truth := churnTruth()
	tq := stats.StudentTQuantile(0.95, churnK-1)
	fpc := math.Sqrt(float64(churnWindow-churnK) / float64(churnWindow-1))
	var (
		intervals []statcheck.Interval
		means     []float64
	)
	for _, seed := range statcheck.Seeds(0xC12, churnTrials) {
		s := churnStream(seed).Sample(churnCutoff)
		var sum float64
		for _, r := range s {
			sum += churnValue(r.Pos[2])
		}
		mean := sum / float64(len(s))
		var ss float64
		for _, r := range s {
			d := churnValue(r.Pos[2]) - mean
			ss += d * d
		}
		sd := math.Sqrt(ss / float64(len(s)-1))
		half := tq * sd / math.Sqrt(float64(len(s))) * fpc
		intervals = append(intervals, statcheck.IntervalAround(mean, half))
		means = append(means, mean)
	}
	// 2% slack absorbs the t/CLT approximation at k=50 on the sawtooth
	// payload; exact uniformity means the sample mean itself is unbiased
	// with NO slack.
	statcheck.Coverage(t, "window-reservoir-ci", truth, intervals, 0.95, 0.02, statcheck.DefaultAlpha)
	statcheck.MeanWithin(t, "window-reservoir-mean", truth, means, 0, statcheck.DefaultAlpha)
}
