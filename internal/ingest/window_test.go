package ingest

import (
	"testing"

	"storm/internal/data"
	"storm/internal/geo"
)

// rowAt builds a record whose event time (Pos[2]) is t and whose Pos[0]
// doubles as a payload marker, so tests can identify sampled records by
// inspection.
func rowAt(t float64) data.Row {
	return data.Row{Pos: geo.Vec{t, 0, t}}
}

// sampleTimes collects the event times of a sample as a set; the fixtures
// use distinct times, so this also detects duplicates.
func sampleTimes(t *testing.T, rows []data.Row) map[float64]bool {
	t.Helper()
	set := make(map[float64]bool, len(rows))
	for _, r := range rows {
		if set[r.Pos[2]] {
			t.Fatalf("duplicate record t=%v in sample", r.Pos[2])
		}
		set[r.Pos[2]] = true
	}
	return set
}

func TestWindowReservoirSmallPopulation(t *testing.T) {
	w := NewWindowReservoir(8, 1)
	if w.K() != 8 {
		t.Fatalf("K = %d, want 8", w.K())
	}
	for i := 0; i < 5; i++ {
		w.Add(rowAt(float64(i)))
	}
	if w.Added() != 5 {
		t.Fatalf("Added = %d, want 5", w.Added())
	}
	// Fewer live records than k: the sample IS the window, exactly.
	got := sampleTimes(t, w.Sample(0))
	if len(got) != 5 {
		t.Fatalf("sample size = %d, want all 5 live records", len(got))
	}
	for i := 0; i < 5; i++ {
		if !got[float64(i)] {
			t.Fatalf("record t=%d missing from full-window sample", i)
		}
	}
	// A degenerate capacity is floored to 1.
	if NewWindowReservoir(0, 1).K() != 1 {
		t.Fatal("k < 1 should floor to 1")
	}
}

func TestWindowReservoirExpiry(t *testing.T) {
	w := NewWindowReservoir(4, 7)
	for i := 0; i < 100; i++ {
		w.Add(rowAt(float64(i)))
	}
	// Explicit Expire is a memory release: retained records all live past
	// the cutoff afterwards.
	w.Expire(50)
	if got := w.Retained(); got == 0 {
		t.Fatal("expire dropped everything")
	}
	// Sample applies its own cutoff regardless of Expire cadence.
	for _, cutoff := range []float64{0, 50, 90, 97} {
		for tm := range sampleTimes(t, w.Sample(cutoff)) {
			if tm < cutoff {
				t.Fatalf("sample at t=%v escapes cutoff %v", tm, cutoff)
			}
		}
	}
	// live = {97, 98, 99}: fewer than k, so the sample must be exactly the
	// live set — dominance pruning must never have discarded any of the
	// latest k records (they cannot have k dominators).
	got := sampleTimes(t, w.Sample(97))
	if len(got) != 3 || !got[97] || !got[98] || !got[99] {
		t.Fatalf("tail sample = %v, want exactly {97, 98, 99}", got)
	}
	// A cutoff past the stream leaves nothing.
	if s := w.Sample(1000); len(s) != 0 {
		t.Fatalf("sample past the watermark returned %d records", len(s))
	}
}

func TestWindowReservoirOutOfOrder(t *testing.T) {
	w := NewWindowReservoir(16, 3)
	// Blocks of 8 arrive internally reversed: every block exercises the
	// binary-search insert path for stragglers behind the tail.
	const n = 4000
	for b := 0; b < n; b += 8 {
		for i := b + 7; i >= b; i-- {
			w.Add(rowAt(float64(i)))
		}
		if b%640 == 0 {
			w.Expire(float64(b - 1000))
		}
	}
	if w.Added() != n {
		t.Fatalf("Added = %d, want %d", w.Added(), n)
	}
	s := w.Sample(n - 100)
	if len(s) != 16 {
		t.Fatalf("sample size = %d, want k=16 (live population 100)", len(s))
	}
	for tm := range sampleTimes(t, s) {
		if tm < n-100 || tm > n-1 {
			t.Fatalf("sample t=%v outside live window [%v, %v]", tm, n-100.0, n-1.0)
		}
	}
	// The latest k records are unprunable; a tail cutoff recovers them all.
	got := sampleTimes(t, w.Sample(n-16))
	if len(got) != 16 {
		t.Fatalf("tail sample size = %d, want the full last-16 set", len(got))
	}
	for i := n - 16; i < n; i++ {
		if !got[float64(i)] {
			t.Fatalf("record t=%d missing from tail sample", i)
		}
	}
}

func TestWindowReservoirPruneBoundsMemory(t *testing.T) {
	const k, n = 16, 200_000
	w := NewWindowReservoir(k, 11)
	for i := 0; i < n; i++ {
		w.Add(rowAt(float64(i)))
	}
	if w.Added() != n {
		t.Fatalf("Added = %d, want %d", w.Added(), n)
	}
	// The retained skyline is O(k·log(n/k)) in expectation for in-order
	// streams (~k·ln(n/k) ≈ 151 here) and the doubling trigger keeps the
	// buffer within 2× of it; 16× leaves generous headroom while still
	// failing loudly if pruning ever stops working (retained would be n).
	if got := w.Retained(); got > 16*k*14 { // 14 ≈ log2(n/k)
		t.Fatalf("retained %d of %d added; dominance pruning is not bounding memory", got, n)
	}
	if w.pruned == 0 {
		t.Fatal("a 200k in-order stream must prune")
	}
	// Pruning is invisible to Sample: a window of the last 50 yields k
	// records, all live.
	s := w.Sample(n - 50)
	if len(s) != k {
		t.Fatalf("post-prune sample size = %d, want %d", len(s), k)
	}
	for tm := range sampleTimes(t, s) {
		if tm < n-50 {
			t.Fatalf("post-prune sample t=%v below cutoff", tm)
		}
	}
}

func TestWindowReservoirDeterministicUnderSeed(t *testing.T) {
	run := func(seed int64) map[float64]bool {
		w := NewWindowReservoir(8, seed)
		for i := 0; i < 500; i++ {
			w.Add(rowAt(float64(i)))
		}
		return sampleTimes(t, w.Sample(200))
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("same seed, different sample sizes: %d vs %d", len(a), len(b))
	}
	for tm := range a {
		if !b[tm] {
			t.Fatalf("same seed, different samples: %v only in the first", tm)
		}
	}
	c := run(43)
	same := true
	for tm := range a {
		if !c[tm] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical samples (priorities not seeded?)")
	}
}

// TestWindowReservoirAddBatchMatchesAdd: AddBatch draws priorities in
// arrival order, so under a fixed seed a batched reservoir retains exactly
// the same sample as a per-record one — including when batches arrive out
// of order (the multi-producer interleaving AddBatch's merge exists for).
func TestWindowReservoirAddBatchMatchesAdd(t *testing.T) {
	// Chunks claimed in order but delivered interleaved: 0-99, 200-299,
	// 100-199, 400-499, 300-399, ...
	var rows []data.Row
	for c := 0; c < 20; c++ {
		base := c * 100
		if c%2 == 1 && c+1 < 20 {
			base = (c + 1) * 100
		} else if c%2 == 0 && c > 0 {
			base = (c - 1) * 100
		}
		for i := 0; i < 100; i++ {
			rows = append(rows, rowAt(float64(base+i)))
		}
	}
	one := NewWindowReservoir(64, 7)
	two := NewWindowReservoir(64, 7)
	for i := 0; i < len(rows); i += 100 {
		chunk := rows[i : i+100]
		for _, r := range chunk {
			one.Add(r)
		}
		two.AddBatch(chunk)
	}
	if one.Added() != two.Added() {
		t.Fatalf("added %d vs %d", one.Added(), two.Added())
	}
	cutoff := 500.0
	a := sampleTimes(t, one.Sample(cutoff))
	b := sampleTimes(t, two.Sample(cutoff))
	if len(a) != len(b) {
		t.Fatalf("sample sizes differ: %d vs %d", len(a), len(b))
	}
	for tm := range a {
		if !b[tm] {
			t.Fatalf("batched reservoir missing t=%v", tm)
		}
	}
}
