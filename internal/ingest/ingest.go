// Package ingest is STORM's streaming write path: sharded, lock-minimal
// ingest buffers that accept appends off the query path and drain in the
// background as batched bulk inserts into the query indexes — the paper's
// live-firehose scenario (a Twitter stream queried online while it is
// still arriving).
//
// # Architecture
//
// Producers call Append, which round-robins records across S independent
// buffer shards; each append takes one short per-shard mutex, never the
// dataset's index lock. A background drainer goroutine wakes on a timer
// (Config.FlushInterval) or as soon as any shard passes
// Config.FlushRecords, swaps every shard's buffer out under its mutex, and
// hands the combined batch to the Sink — engine.Handle.InsertBatch, which
// takes the dataset write lock once per call and feeds the R-tree the
// whole batch as Hilbert-sorted run merges (rtree.Tree.InsertBatch: one
// descent per run, whole-run leaf splices, evenly-filled multi-way
// splits). Deep backlogs are handed over in Config.MaxBatch-sized chunks
// with a scheduler yield between them, so one drain pass holds the write
// lock for a bounded time and queries contend with a few brief writers
// per flush interval instead of one per record.
//
// # Backpressure
//
// The buffer is bounded: when more than Config.MaxPending records are
// waiting to drain, Append returns ErrBackpressure instead of growing the
// heap — the caller (the server's POST /ingest handler) surfaces it as
// HTTP 429 with a Retry-After. Backpressure means the drain (index
// insert) side is the bottleneck; see INGEST.md for tuning.
//
// # Sliding-window state
//
// The ingestor tracks the stream's watermark (the maximum event time
// seen) and can maintain a WindowReservoir — an exactly uniform sample
// over the trailing window — so monitors can answer "what does the last
// five minutes look like" in O(k) without touching the indexes. Full
// query semantics over the window (`LAST <dur>` with WHERE, contracts and
// distributed execution) run through the engine, which narrows the query
// range's time axis against the dataset watermark; see engine.Options.
//
// Metrics land under storm.ingest.<dataset>.*: accepted, backpressure,
// batches, drained, pending, window.lag_ms (how far queryability trails
// arrival), drain.batch_ms.
package ingest

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"storm/internal/data"
	"storm/internal/obs"
)

// ErrBackpressure is returned by Append when the buffered backlog exceeds
// Config.MaxPending: the drain side is behind and the producer must slow
// down or retry. The server maps it to HTTP 429.
var ErrBackpressure = errors.New("ingest: buffer full (drain backlog at MaxPending); retry")

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("ingest: ingestor closed")

// Sink receives drained batches. engine.Handle implements it: InsertBatch
// takes the dataset write lock once for the whole batch and merges it into
// the R-tree as Hilbert-sorted runs.
type Sink interface {
	InsertBatch(rows []data.Row) []data.ID
}

// Config tunes an Ingestor. The zero value gets sensible defaults.
type Config struct {
	// Shards is the number of independent buffer shards Append spreads
	// over; more shards mean less producer contention. Default 8.
	Shards int
	// FlushRecords triggers an early drain once any one shard holds this
	// many records (default 4096), keeping window lag low under load.
	FlushRecords int
	// FlushInterval is the drainer's idle wake-up period (default 25ms) —
	// the worst-case time an accepted record waits before becoming
	// queryable on an idle stream.
	FlushInterval time.Duration
	// MaxPending bounds the total records buffered across all shards;
	// beyond it Append returns ErrBackpressure. Default 1 << 19 (512k).
	MaxPending int
	// MaxBatch caps the records handed to one Sink.InsertBatch call
	// (default 65536). The sink holds the dataset write lock per call, so
	// this bounds how long one drain pass can stall concurrent queries
	// even when a large backlog has built up; the backlog drains over
	// several calls with the lock released in between.
	MaxBatch int
	// Window, when positive, maintains a WindowReservoir over the trailing
	// window of this duration (event-time seconds are taken from each
	// row's Pos[2]).
	Window time.Duration
	// WindowSamples is the reservoir's sample capacity k (default 1024);
	// ignored without Window.
	WindowSamples int
	// Seed drives the reservoir's priority draws.
	Seed int64
	// Obs receives storm.ingest.<Name>.* metrics; nil disables them.
	Obs *obs.Registry
	// Name is the dataset name used in metric keys (default "default").
	Name string
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.FlushRecords <= 0 {
		c.FlushRecords = 4096
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 25 * time.Millisecond
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 1 << 19
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1 << 16
	}
	if c.WindowSamples <= 0 {
		c.WindowSamples = 1024
	}
	if c.Name == "" {
		c.Name = "default"
	}
	return c
}

// bufShard is one ingest buffer shard: a mutex, the pending rows, and the
// arrival time of the oldest pending row (for window-lag accounting).
// Padded indirectly by being heap-allocated per shard.
type bufShard struct {
	mu     sync.Mutex
	rows   []data.Row
	oldest time.Time
}

// ingestMetrics holds the ingestor's resolved metric handles; all writes
// are nil-safe no-ops when metrics are disabled.
type ingestMetrics struct {
	accepted     *obs.Counter
	backpressure *obs.Counter
	batches      *obs.Counter
	drained      *obs.Counter
	lagMS        *obs.TuningHistogram
	batchMS      *obs.TuningHistogram
}

// Ingestor is a sharded streaming write buffer in front of a Sink.
type Ingestor struct {
	cfg    Config
	sink   Sink
	shards []*bufShard
	// next round-robins producers across shards.
	next atomic.Uint64
	// pending is the total buffered record count (backpressure authority).
	pending atomic.Int64
	// accepted counts records accepted over the ingestor's lifetime.
	accepted atomic.Uint64
	// wm is the stream watermark: math.Float64bits of the maximum event
	// time accepted so far; wmSet flips once the first record lands.
	wm     atomic.Uint64
	wmSet  atomic.Bool
	res    *WindowReservoir
	met    ingestMetrics
	wake   chan struct{}
	done   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
	// flushMu serializes drain passes (the background drainer and explicit
	// Flush calls), keeping sink batches ordered. drainBuf is the drain's
	// staging buffer, guarded by flushMu and reused across passes so a
	// sustained stream drains without reallocating.
	flushMu  sync.Mutex
	drainBuf []data.Row
}

// New starts an ingestor draining into sink. Call Close to flush and stop
// the background drainer.
func New(sink Sink, cfg Config) *Ingestor {
	cfg = cfg.withDefaults()
	in := &Ingestor{
		cfg:    cfg,
		sink:   sink,
		shards: make([]*bufShard, cfg.Shards),
		wake:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	for i := range in.shards {
		in.shards[i] = &bufShard{}
	}
	if cfg.Window > 0 {
		in.res = NewWindowReservoir(cfg.WindowSamples, cfg.Seed)
	}
	// A nil registry hands out nil metrics whose writes are no-ops, so no
	// site below branches on "are metrics enabled" (the package obs rule).
	prefix := "storm.ingest." + cfg.Name + "."
	reg := cfg.Obs
	in.met = ingestMetrics{
		accepted:     reg.Counter(prefix + "accepted"),
		backpressure: reg.Counter(prefix + "backpressure"),
		batches:      reg.Counter(prefix + "batches"),
		drained:      reg.Counter(prefix + "drained"),
		lagMS:        reg.TuningHistogram(prefix+"window.lag_ms", 0.1, 16),
		batchMS:      reg.TuningHistogram(prefix+"drain.batch_ms", 0.1, 16),
	}
	reg.PublishFunc(prefix+"pending", func() any { return in.Pending() })
	if in.res != nil {
		reg.PublishFunc(prefix+"window.retained", func() any { return in.res.Retained() })
	}
	in.wg.Add(1)
	go in.drainLoop()
	return in
}

// Append buffers one record for background insertion. It returns
// ErrBackpressure when the drain backlog is at Config.MaxPending and
// ErrClosed after Close; the record is then NOT buffered.
func (in *Ingestor) Append(row data.Row) error {
	if in.closed.Load() {
		return ErrClosed
	}
	if in.pending.Load() >= int64(in.cfg.MaxPending) {
		in.met.backpressure.Inc()
		return ErrBackpressure
	}
	s := in.shards[in.next.Add(1)%uint64(len(in.shards))]
	s.mu.Lock()
	if len(s.rows) == 0 {
		s.oldest = time.Now()
	}
	s.rows = append(s.rows, row)
	n := len(s.rows)
	s.mu.Unlock()
	in.pending.Add(1)
	in.accepted.Add(1)
	in.met.accepted.Inc()
	in.noteTime(row.Pos[2])
	if in.res != nil {
		in.res.Add(row)
	}
	if n >= in.cfg.FlushRecords {
		// Wake the drainer early; non-blocking because one pending wake-up
		// is enough.
		select {
		case in.wake <- struct{}{}:
		default:
		}
	}
	return nil
}

// AppendBatch buffers a batch of records under one shard-lock acquisition
// and one round of counter updates — the POST /ingest array path and
// paced firehose producers, where per-record Append overhead (mutex,
// atomics, reservoir lock) would dominate. All-or-nothing: when it
// returns ErrBackpressure or ErrClosed, no record of the batch was
// buffered, so the caller retries the whole batch after backing off.
func (in *Ingestor) AppendBatch(rows []data.Row) error {
	if len(rows) == 0 {
		return nil
	}
	if in.closed.Load() {
		return ErrClosed
	}
	if in.pending.Load() >= int64(in.cfg.MaxPending) {
		in.met.backpressure.Inc()
		return ErrBackpressure
	}
	s := in.shards[in.next.Add(1)%uint64(len(in.shards))]
	s.mu.Lock()
	if len(s.rows) == 0 {
		s.oldest = time.Now()
	}
	s.rows = append(s.rows, rows...)
	n := len(s.rows)
	s.mu.Unlock()
	in.pending.Add(int64(len(rows)))
	in.accepted.Add(uint64(len(rows)))
	in.met.accepted.Add(uint64(len(rows)))
	maxT := math.Inf(-1)
	for i := range rows {
		if t := rows[i].Pos[2]; t > maxT {
			maxT = t
		}
	}
	if !math.IsInf(maxT, -1) { // all-NaN batches advance nothing
		in.noteTime(maxT)
	}
	if in.res != nil {
		in.res.AddBatch(rows)
	}
	if n >= in.cfg.FlushRecords {
		select {
		case in.wake <- struct{}{}:
		default:
		}
	}
	return nil
}

// noteTime advances the watermark to t if it is ahead (CAS max).
func (in *Ingestor) noteTime(t float64) {
	if math.IsNaN(t) {
		return
	}
	for {
		cur := in.wm.Load()
		if in.wmSet.Load() && math.Float64frombits(cur) >= t {
			return
		}
		if in.wm.CompareAndSwap(cur, math.Float64bits(t)) {
			in.wmSet.Store(true)
			return
		}
	}
}

// Watermark returns the maximum event time accepted so far; ok is false
// before the first record.
func (in *Ingestor) Watermark() (t float64, ok bool) {
	if !in.wmSet.Load() {
		return 0, false
	}
	return math.Float64frombits(in.wm.Load()), true
}

// Pending returns how many accepted records are still waiting to drain.
func (in *Ingestor) Pending() int { return int(in.pending.Load()) }

// Accepted returns how many records Append has accepted in total.
func (in *Ingestor) Accepted() uint64 { return in.accepted.Load() }

// Window returns the ingestor's live-window reservoir, or nil when
// Config.Window was zero.
func (in *Ingestor) Window() *WindowReservoir { return in.res }

// WindowSample returns an exactly uniform sample of up to K records whose
// event time falls in the trailing Config.Window ending at the watermark.
// Nil without a configured window or before the first record.
func (in *Ingestor) WindowSample() []data.Row {
	if in.res == nil {
		return nil
	}
	wm, ok := in.Watermark()
	if !ok {
		return nil
	}
	return in.res.Sample(wm - in.cfg.Window.Seconds())
}

// drainLoop is the background drainer: wake on the flush interval or an
// early-flush signal, drain everything buffered, repeat until Close.
func (in *Ingestor) drainLoop() {
	defer in.wg.Done()
	ticker := time.NewTicker(in.cfg.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-in.done:
			in.drain()
			return
		case <-ticker.C:
		case <-in.wake:
		}
		in.drain()
	}
}

// drain swaps every shard's buffer out under its mutex and bulk-inserts
// the combined batch. One sink call per pass keeps the dataset write lock
// acquisitions at one per flush, not one per record.
func (in *Ingestor) drain() {
	in.flushMu.Lock()
	defer in.flushMu.Unlock()
	batch := in.drainBuf[:0]
	oldest := time.Time{}
	for _, s := range in.shards {
		s.mu.Lock()
		if len(s.rows) > 0 {
			batch = append(batch, s.rows...)
			s.rows = s.rows[:0]
			if oldest.IsZero() || s.oldest.Before(oldest) {
				oldest = s.oldest
			}
		}
		s.mu.Unlock()
	}
	in.drainBuf = batch
	if len(batch) == 0 {
		return
	}
	// Hand the sink at most MaxBatch records per call: each call is one
	// dataset write-lock hold, and a bounded hold keeps concurrent query
	// latency bounded even when draining a deep backlog.
	for lo := 0; lo < len(batch); lo += in.cfg.MaxBatch {
		hi := lo + in.cfg.MaxBatch
		if hi > len(batch) {
			hi = len(batch)
		}
		start := time.Now()
		in.sink.InsertBatch(batch[lo:hi])
		in.pending.Add(int64(-(hi - lo)))
		in.met.batches.Inc()
		in.met.drained.Add(uint64(hi - lo))
		in.met.batchMS.Observe(float64(time.Since(start)) / float64(time.Millisecond))
		// Yield between holds. Without this, on a machine with few spare
		// cores the drain goroutine re-acquires the dataset write lock
		// before the readers it just woke ever get scheduled, and a deep
		// backlog starves queries for its whole duration — exactly what
		// the per-chunk bound is meant to prevent.
		runtime.Gosched()
	}
	if !oldest.IsZero() {
		// Window lag: how long the batch's oldest record waited between
		// acceptance and queryability.
		in.met.lagMS.Observe(float64(time.Since(oldest)) / float64(time.Millisecond))
	}
}

// Flush synchronously drains everything currently buffered into the Sink.
func (in *Ingestor) Flush() { in.drain() }

// Close flushes remaining records, stops the drainer, and makes further
// Appends fail with ErrClosed. Idempotent.
func (in *Ingestor) Close() error {
	if in.closed.Swap(true) {
		return nil
	}
	close(in.done)
	in.wg.Wait()
	return nil
}

// String summarizes the ingestor's state for logs.
func (in *Ingestor) String() string {
	return fmt.Sprintf("ingest(%s: %d shards, %d pending, %d accepted)",
		in.cfg.Name, len(in.shards), in.Pending(), in.Accepted())
}
