// Package pred implements attribute predicates for STORM queries: interval
// constraints over numeric record attributes (`WHERE speed >= 30 AND
// speed < 80`), in the normal form the whole stack shares — the query
// grammar parses into it, the planner estimates selectivity on it, the
// index layer prunes subtrees against per-node attribute digests of it,
// and the wire codec ships it to remote shards so they prune locally.
//
// # Normal form
//
// A Predicate is a conjunction with exactly one Term per attribute, terms
// sorted by attribute name. Each Term is one (possibly half-open,
// possibly unbounded) interval; ±Inf marks an unbounded side. Normalize
// intersects duplicate attributes, drops vacuous terms, and canonicalizes
// empty intervals, so equal predicates have equal representations and
// String is a fixpoint under re-parsing (FuzzParseWhere relies on this).
//
// # NaN semantics
//
// A NaN attribute value (the dataset's "missing" marker) satisfies no
// term — every comparison with NaN is false, exactly as in SQL's
// three-valued logic where NULL comparisons never qualify. Node digests
// therefore track HasNaN separately from Min/Max: a subtree whose values
// all lie inside a term's interval still cannot be skipped wholesale if
// it may contain missing values.
package pred

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"storm/internal/data"
)

// Term is one interval constraint on a numeric attribute: Lo ≤/< attr ≤/<
// Hi, with ±Inf marking an unbounded side and LoOpen/HiOpen selecting the
// strict comparison.
type Term struct {
	// Attr is the numeric column name.
	Attr string
	// Lo and Hi bound the accepted interval; -Inf / +Inf mean unbounded.
	Lo, Hi float64
	// LoOpen and HiOpen make the corresponding bound strict (>, <).
	LoOpen, HiOpen bool
}

// Contains reports whether value v satisfies the term. NaN satisfies
// nothing (missing values never qualify).
func (t Term) Contains(v float64) bool {
	if math.IsNaN(v) {
		return false
	}
	if v < t.Lo || (v == t.Lo && t.LoOpen) {
		return false
	}
	if v > t.Hi || (v == t.Hi && t.HiOpen) {
		return false
	}
	return true
}

// IsEmpty reports whether no value can satisfy the term (an empty
// interval, or a NaN bound — comparisons with NaN accept nothing).
func (t Term) IsEmpty() bool {
	if math.IsNaN(t.Lo) || math.IsNaN(t.Hi) {
		return true
	}
	if t.Lo > t.Hi {
		return true
	}
	return t.Lo == t.Hi && (t.LoOpen || t.HiOpen)
}

// isVacuous reports whether every value satisfies the term (both sides
// unbounded), making the term droppable. NaN values still fail a vacuous
// term conceptually, but a dropped term only widens the predicate toward
// "no constraint on this attribute", which is exactly what both sides
// unbounded means for interval pruning; per-record NaN rejection belongs
// to terms with a real bound.
func (t Term) isVacuous() bool {
	return math.IsInf(t.Lo, -1) && math.IsInf(t.Hi, 1)
}

// emptyTerm is the canonical empty interval on an attribute: "attr > 0
// AND attr < 0", chosen because it re-parses to itself.
func emptyTerm(attr string) Term {
	return Term{Attr: attr, Lo: 0, Hi: 0, LoOpen: true, HiOpen: true}
}

// intersect returns the conjunction of two terms on the same attribute.
func intersect(a, b Term) Term {
	out := a
	if b.Lo > out.Lo || (b.Lo == out.Lo && b.LoOpen) {
		out.Lo, out.LoOpen = b.Lo, b.LoOpen
	}
	if b.Hi < out.Hi || (b.Hi == out.Hi && b.HiOpen) {
		out.Hi, out.HiOpen = b.Hi, b.HiOpen
	}
	return out
}

// Predicate is a conjunction of interval terms in normal form (one term
// per attribute, sorted by attribute name). The zero value is the empty
// predicate, which matches every record.
type Predicate struct {
	// Terms are the conjunction's interval constraints.
	Terms []Term
}

// Empty reports whether the predicate constrains nothing.
func (p Predicate) Empty() bool { return len(p.Terms) == 0 }

// Normalize builds a Predicate in normal form from arbitrary conjunction
// terms: duplicate attributes are intersected, vacuous terms dropped, NaN
// bounds and empty intervals canonicalized to the empty term, and the
// result sorted by attribute name. Normal form makes String canonical:
// Normalize(parse(p.String())) == p.
func Normalize(terms []Term) Predicate {
	byAttr := make(map[string]Term, len(terms))
	for _, t := range terms {
		if math.IsNaN(t.Lo) || math.IsNaN(t.Hi) {
			t = emptyTerm(t.Attr)
		}
		if got, ok := byAttr[t.Attr]; ok {
			t = intersect(got, t)
		}
		byAttr[t.Attr] = t
	}
	out := make([]Term, 0, len(byAttr))
	for _, t := range byAttr {
		if t.isVacuous() {
			continue
		}
		if t.IsEmpty() {
			t = emptyTerm(t.Attr)
		}
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Attr < out[j].Attr })
	if len(out) == 0 {
		return Predicate{}
	}
	return Predicate{Terms: out}
}

// formatBound renders a float bound in the canonical form the query
// grammar re-parses exactly.
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// String renders one term in the canonical comparison form ("speed >= 30
// AND speed < 80"); equality intervals render as "attr = v" and unbounded
// sides are omitted. The empty interval renders as "attr > 0 AND attr <
// 0", which re-parses to itself.
func (t Term) String() string {
	if t.Lo == t.Hi && !t.LoOpen && !t.HiOpen {
		return t.Attr + " = " + formatBound(t.Lo)
	}
	var parts []string
	if !math.IsInf(t.Lo, -1) {
		op := ">="
		if t.LoOpen {
			op = ">"
		}
		parts = append(parts, t.Attr+" "+op+" "+formatBound(t.Lo))
	}
	if !math.IsInf(t.Hi, 1) {
		op := "<="
		if t.HiOpen {
			op = "<"
		}
		parts = append(parts, t.Attr+" "+op+" "+formatBound(t.Hi))
	}
	return strings.Join(parts, " AND ")
}

// String renders the predicate as the canonical AND-joined comparison
// list; the empty predicate renders as "".
func (p Predicate) String() string {
	parts := make([]string, 0, len(p.Terms))
	for _, t := range p.Terms {
		parts = append(parts, t.String())
	}
	return strings.Join(parts, " AND ")
}

// AttrStats digests the values one subtree (or dataset) holds for one
// attribute: the min/max envelope plus whether any value is NaN
// (missing). The zero-information digest is Empty (Min > Max).
type AttrStats struct {
	// Min and Max bound the non-NaN values; Min > Max means none.
	Min, Max float64
	// HasNaN reports at least one NaN (missing) value.
	HasNaN bool
}

// EmptyStats returns the digest of zero values.
func EmptyStats() AttrStats {
	return AttrStats{Min: math.Inf(1), Max: math.Inf(-1)}
}

// Add folds one value into the digest.
func (s *AttrStats) Add(v float64) {
	if math.IsNaN(v) {
		s.HasNaN = true
		return
	}
	if v < s.Min {
		s.Min = v
	}
	if v > s.Max {
		s.Max = v
	}
}

// Merge folds another digest into this one.
func (s *AttrStats) Merge(o AttrStats) {
	if o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
	s.HasNaN = s.HasNaN || o.HasNaN
}

// Empty reports whether the digest covers no non-NaN values.
func (s AttrStats) Empty() bool { return s.Min > s.Max }

// Verdict is the three-valued result of testing a subtree digest against
// a predicate: None (no record can satisfy — prune the subtree), Maybe
// (records must be tested individually), All (every record satisfies —
// per-record tests can be skipped).
type Verdict uint8

// The three pruning verdicts.
const (
	// None: the subtree provably contains no qualifying record.
	None Verdict = iota
	// Maybe: the digest cannot decide; test records individually.
	Maybe
	// All: every record in the subtree qualifies.
	All
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case None:
		return "none"
	case Maybe:
		return "maybe"
	default:
		return "all"
	}
}

// Verdict classifies a subtree digest against the term. A digest with no
// non-NaN values yields None (NaN never qualifies); All additionally
// requires the subtree to hold no NaN values.
func (t Term) Verdict(st AttrStats) Verdict {
	if st.Empty() {
		return None
	}
	if st.Max < t.Lo || (st.Max == t.Lo && t.LoOpen) {
		return None
	}
	if st.Min > t.Hi || (st.Min == t.Hi && t.HiOpen) {
		return None
	}
	loOK := st.Min > t.Lo || (st.Min == t.Lo && !t.LoOpen)
	hiOK := st.Max < t.Hi || (st.Max == t.Hi && !t.HiOpen)
	if loOK && hiOK && !st.HasNaN {
		return All
	}
	return Maybe
}

// Selectivity estimates the fraction of records the predicate accepts,
// assuming each attribute is uniform over its dataset-level digest
// envelope and attributes are independent — the planner's pushdown-vs-
// rejection heuristic, not a guarantee. stats resolves an attribute's
// dataset-level digest; attributes it cannot resolve contribute no
// information (factor 1).
func (p Predicate) Selectivity(stats func(attr string) (AttrStats, bool)) float64 {
	sel := 1.0
	for _, t := range p.Terms {
		st, ok := stats(t.Attr)
		if !ok || st.Empty() {
			if t.IsEmpty() {
				return 0
			}
			continue
		}
		switch t.Verdict(st) {
		case None:
			return 0
		case All:
			continue
		}
		span := st.Max - st.Min
		if span <= 0 || math.IsInf(span, 1) {
			// Degenerate or unbounded envelope: Verdict already said
			// Maybe, so split the difference.
			sel *= 0.5
			continue
		}
		lo := math.Max(t.Lo, st.Min)
		hi := math.Min(t.Hi, st.Max)
		frac := (hi - lo) / span
		if frac < 0 {
			return 0
		}
		if frac > 1 {
			frac = 1
		}
		sel *= frac
	}
	return sel
}

// ColumnSource resolves numeric columns by name; *data.Dataset satisfies
// it.
type ColumnSource interface {
	// NumericColumn returns the backing slice of a numeric column.
	NumericColumn(name string) ([]float64, error)
}

// Compiled is a predicate bound to one dataset's columns: column slices
// are resolved once per query (safe while the caller holds the dataset's
// read lock — columns cannot be appended mid-query), so Match is a few
// slice loads per record.
type Compiled struct {
	terms []Term
	cols  [][]float64
}

// Compile binds the predicate to src's columns. It fails on attributes
// the source has no numeric column for.
func (p Predicate) Compile(src ColumnSource) (*Compiled, error) {
	c := &Compiled{terms: p.Terms, cols: make([][]float64, len(p.Terms))}
	for i, t := range p.Terms {
		col, err := src.NumericColumn(t.Attr)
		if err != nil {
			return nil, err
		}
		c.cols[i] = col
	}
	return c, nil
}

// Match reports whether record id satisfies every term. Records beyond
// the compiled column length (appended after compilation) never match.
func (c *Compiled) Match(id data.ID) bool {
	for i := range c.terms {
		col := c.cols[i]
		if id >= data.ID(len(col)) || !c.terms[i].Contains(col[id]) {
			return false
		}
	}
	return true
}

// Terms returns the compiled predicate's terms (normal form).
func (c *Compiled) Terms() []Term { return c.terms }
