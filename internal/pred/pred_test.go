package pred

import (
	"math"
	"testing"

	"storm/internal/data"
	"storm/internal/geo"
)

func term(attr string, lo, hi float64, loOpen, hiOpen bool) Term {
	return Term{Attr: attr, Lo: lo, Hi: hi, LoOpen: loOpen, HiOpen: hiOpen}
}

func TestTermContains(t *testing.T) {
	cases := []struct {
		t    Term
		v    float64
		want bool
	}{
		{term("a", 1, 2, false, false), 1, true},
		{term("a", 1, 2, true, false), 1, false},
		{term("a", 1, 2, false, false), 2, true},
		{term("a", 1, 2, false, true), 2, false},
		{term("a", 1, 2, false, false), 1.5, true},
		{term("a", 1, 2, false, false), 0.999, false},
		{term("a", 1, 2, false, false), math.NaN(), false},
		{term("a", math.Inf(-1), 2, false, true), -1e300, true},
		{term("a", 1, math.Inf(1), true, false), 1e300, true},
		{term("a", 5, 5, false, false), 5, true},
		{term("a", 5, 5, false, false), 5.0000001, false},
	}
	for i, c := range cases {
		if got := c.t.Contains(c.v); got != c.want {
			t.Errorf("case %d: %v.Contains(%v) = %v, want %v", i, c.t, c.v, got, c.want)
		}
	}
}

func TestNormalizeIntersects(t *testing.T) {
	p := Normalize([]Term{
		term("b", 0, math.Inf(1), false, false),
		term("a", math.Inf(-1), 10, false, true),
		term("a", 2, math.Inf(1), true, false),
	})
	if len(p.Terms) != 2 {
		t.Fatalf("want 2 terms, got %v", p.Terms)
	}
	if got := p.Terms[0]; got != term("a", 2, 10, true, true) {
		t.Errorf("intersection wrong: %+v", got)
	}
	if p.Terms[1].Attr != "b" {
		t.Errorf("terms not sorted: %+v", p.Terms)
	}
}

func TestNormalizeEmptyAndVacuous(t *testing.T) {
	p := Normalize([]Term{term("a", math.Inf(-1), math.Inf(1), false, false)})
	if !p.Empty() {
		t.Errorf("vacuous term survived: %+v", p.Terms)
	}
	p = Normalize([]Term{term("a", 5, 2, false, false)})
	if len(p.Terms) != 1 || p.Terms[0] != emptyTerm("a") {
		t.Errorf("empty interval not canonicalized: %+v", p.Terms)
	}
	p = Normalize([]Term{term("a", math.NaN(), 2, false, false)})
	if len(p.Terms) != 1 || p.Terms[0] != emptyTerm("a") {
		t.Errorf("NaN bound not canonicalized: %+v", p.Terms)
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		p    Predicate
		want string
	}{
		{Normalize([]Term{term("speed", 30, 80, false, true)}), "speed >= 30 AND speed < 80"},
		{Normalize([]Term{term("alt", 5, 5, false, false)}), "alt = 5"},
		{Normalize([]Term{term("alt", math.Inf(-1), 7, false, false)}), "alt <= 7"},
		{Normalize([]Term{term("alt", 7, math.Inf(1), true, false)}), "alt > 7"},
		{Normalize([]Term{term("a", 5, 2, false, false)}), "a > 0 AND a < 0"},
		{Predicate{}, ""},
	}
	for i, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("case %d: String() = %q, want %q", i, got, c.want)
		}
	}
}

func TestVerdict(t *testing.T) {
	tm := term("a", 10, 20, false, false)
	cases := []struct {
		st   AttrStats
		want Verdict
	}{
		{AttrStats{Min: 12, Max: 18}, All},
		{AttrStats{Min: 10, Max: 20}, All},
		{AttrStats{Min: 5, Max: 9}, None},
		{AttrStats{Min: 21, Max: 30}, None},
		{AttrStats{Min: 5, Max: 15}, Maybe},
		{AttrStats{Min: 12, Max: 18, HasNaN: true}, Maybe},
		{EmptyStats(), None},
	}
	for i, c := range cases {
		if got := tm.Verdict(c.st); got != c.want {
			t.Errorf("case %d: Verdict(%+v) = %v, want %v", i, c.st, got, c.want)
		}
	}
	open := term("a", 10, 20, true, true)
	if got := open.Verdict(AttrStats{Min: 10, Max: 10}); got != None {
		t.Errorf("open bound at boundary: got %v, want None", got)
	}
	if got := open.Verdict(AttrStats{Min: 10, Max: 15}); got != Maybe {
		t.Errorf("boundary min with open lo: got %v, want Maybe", got)
	}
}

func TestCompileMatch(t *testing.T) {
	ds := data.NewDataset("t")
	ds.AddNumericColumn("speed")
	for i := 0; i < 10; i++ {
		id := ds.AppendFast(geo.Vec{})
		if err := ds.SetNumeric("speed", id, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	p := Normalize([]Term{term("speed", 3, 6, false, true)})
	c, err := p.Compile(ds)
	if err != nil {
		t.Fatal(err)
	}
	want := map[data.ID]bool{3: true, 4: true, 5: true}
	for id := data.ID(0); id < 12; id++ {
		if got := c.Match(id); got != want[id] {
			t.Errorf("Match(%d) = %v, want %v", id, got, want[id])
		}
	}
	if _, err := Normalize([]Term{term("nosuch", 0, 1, false, false)}).Compile(ds); err == nil {
		t.Error("Compile on unknown column should fail")
	}
}

func TestSelectivity(t *testing.T) {
	stats := func(attr string) (AttrStats, bool) {
		if attr == "a" {
			return AttrStats{Min: 0, Max: 100}, true
		}
		return AttrStats{}, false
	}
	p := Normalize([]Term{term("a", 0, 10, false, false)})
	if got := p.Selectivity(stats); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("selectivity = %v, want 0.1", got)
	}
	p = Normalize([]Term{term("a", -50, 200, false, false)})
	if got := p.Selectivity(stats); got != 1 {
		t.Errorf("covering term selectivity = %v, want 1", got)
	}
	p = Normalize([]Term{term("a", 200, 300, false, false)})
	if got := p.Selectivity(stats); got != 0 {
		t.Errorf("disjoint term selectivity = %v, want 0", got)
	}
}
