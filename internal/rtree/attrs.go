// Per-node attribute summaries and predicate-pruned traversal.
//
// A Summaries attaches min/max/has-NaN digests of every numeric attribute
// to the tree's nodes, cached in a version-keyed per-node slot exactly
// like the RS-tree's sample buffers: inserts, deletes and splits already
// bump node versions along the mutated path, so a stale digest is
// recomputed on demand from its children (internal nodes, O(fanout)
// merges) or by scanning leaf entries against the dataset columns. The
// digests are therefore always tight — never widened conservatively by
// updates — and the update path needs no changes at all.
//
// A TreeFilter binds a compiled predicate to a tree's Summaries and gives
// traversals the three-valued verdict of package pred: None prunes the
// subtree (no record under it can satisfy the predicate), All skips
// per-record checks, Maybe tests records individually. CountWhere and
// ReportAllWhereTo are the pruned counterparts of Count and ReportAllTo.
package rtree

import (
	"sort"

	"storm/internal/data"
	"storm/internal/geo"
	"storm/internal/iosim"
	"storm/internal/pred"
)

// AttrSource resolves a dataset's numeric columns for summary
// (re)computation; *data.Dataset satisfies it. Columns are re-fetched at
// every recompute because append reallocates the backing slices.
type AttrSource interface {
	// NumericColumns names the numeric columns.
	NumericColumns() []string
	// NumericColumn returns the backing slice of one column.
	NumericColumn(name string) ([]float64, error)
}

// nodeAttrs is the version-keyed per-node digest cache.
type nodeAttrs struct {
	version uint64
	stats   []pred.AttrStats
}

// Summaries maintains per-node attribute digests for one tree. Digests
// are computed lazily per node and cached against the node's version;
// Precompute warms the whole tree (bulk-load/pack time). Safe for
// concurrent readers under the same discipline as the tree itself:
// queries run under the dataset read lock, mutations under the write
// lock.
type Summaries struct {
	tree  *Tree
	src   AttrSource
	attrs []string
	index map[string]int
}

// NewSummaries builds the summary maintainer for t over src's numeric
// columns (sorted by name, fixing each attribute's digest index).
func NewSummaries(t *Tree, src AttrSource) *Summaries {
	names := append([]string(nil), src.NumericColumns()...)
	sort.Strings(names)
	index := make(map[string]int, len(names))
	for i, n := range names {
		index[n] = i
	}
	return &Summaries{tree: t, src: src, attrs: names, index: index}
}

// Attrs returns the summarized attribute names (sorted).
func (s *Summaries) Attrs() []string { return s.attrs }

// AttrIndex returns an attribute's index into per-node digest slices.
func (s *Summaries) AttrIndex(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Precompute walks the tree once, computing and caching every node's
// digests — the bulk-load/pack-time rebuild, mirroring the RS-tree's
// buffer precompute.
func (s *Summaries) Precompute() {
	if s.tree.root != nil && len(s.attrs) > 0 {
		s.Stats(s.tree.root)
	}
}

// Stats returns n's per-attribute digests (indexed per AttrIndex),
// recomputing and re-caching them if the node's version moved since the
// cached copy.
func (s *Summaries) Stats(n *Node) []pred.AttrStats {
	if c := n.attrs.Load(); c != nil && c.version == n.version {
		return c.stats
	}
	version := n.version
	stats := s.compute(n)
	n.attrs.Store(&nodeAttrs{version: version, stats: stats})
	return stats
}

// Root returns the whole tree's digests — the dataset-level envelope the
// planner estimates selectivity from. Nil when nothing is summarized.
func (s *Summaries) Root() []pred.AttrStats {
	if s.tree.root == nil || len(s.attrs) == 0 {
		return nil
	}
	return s.Stats(s.tree.root)
}

// RootStats resolves one attribute's tree-level digest.
func (s *Summaries) RootStats(attr string) (pred.AttrStats, bool) {
	i, ok := s.index[attr]
	if !ok {
		return pred.AttrStats{}, false
	}
	root := s.Root()
	if root == nil {
		return pred.AttrStats{}, false
	}
	return root[i], true
}

// compute builds n's digests from scratch: leaf entries are scanned
// against the current columns, internal nodes merge their children's
// (cached or recomputed) digests.
func (s *Summaries) compute(n *Node) []pred.AttrStats {
	stats := make([]pred.AttrStats, len(s.attrs))
	for i := range stats {
		stats[i] = pred.EmptyStats()
	}
	if n.leaf {
		cols := make([][]float64, len(s.attrs))
		for i, name := range s.attrs {
			if col, err := s.src.NumericColumn(name); err == nil {
				cols[i] = col
			}
		}
		for _, e := range n.entries {
			for i, col := range cols {
				if col == nil || e.ID >= data.ID(len(col)) {
					// Unresolvable value: mark like NaN so the digest
					// can still prune by envelope but never claims All.
					stats[i].HasNaN = true
					continue
				}
				stats[i].Add(col[e.ID])
			}
		}
		return stats
	}
	for _, c := range n.children {
		cst := s.Stats(c)
		for i := range stats {
			stats[i].Merge(cst[i])
		}
	}
	return stats
}

// TreeFilter binds a compiled predicate to one tree's Summaries for
// pruned traversal. It is per-query state (the Pruned counter is not
// synchronized); build one per sampler or count.
type TreeFilter struct {
	c    *pred.Compiled
	sums *Summaries
	// idx maps each predicate term to its digest index, -1 when the
	// attribute is not summarized (its verdict is then always Maybe).
	idx []int
	// Pruned counts pruning events: each time a traversal excluded a
	// subtree on a None verdict. Surfaced through SamplerStats into
	// storm.engine.pushdown.pruned_nodes.
	Pruned uint64
}

// NewTreeFilter binds c to sums. A nil sums disables digest pruning (all
// verdicts Maybe); a nil *TreeFilter everywhere means "no predicate".
func NewTreeFilter(c *pred.Compiled, sums *Summaries) *TreeFilter {
	f := &TreeFilter{c: c, sums: sums, idx: make([]int, len(c.Terms()))}
	for i, t := range c.Terms() {
		f.idx[i] = -1
		if sums != nil {
			if j, ok := sums.AttrIndex(t.Attr); ok {
				f.idx[i] = j
			}
		}
	}
	return f
}

// Verdict classifies node n's subtree against the predicate, counting a
// pruning event on None. Nil filters pass everything.
func (f *TreeFilter) Verdict(n *Node) pred.Verdict {
	if f == nil {
		return pred.All
	}
	v := pred.All
	var stats []pred.AttrStats
	for ti, t := range f.c.Terms() {
		i := f.idx[ti]
		if i < 0 || f.sums == nil {
			v = pred.Maybe
			continue
		}
		if stats == nil {
			stats = f.sums.Stats(n)
		}
		switch t.Verdict(stats[i]) {
		case pred.None:
			f.Pruned++
			return pred.None
		case pred.Maybe:
			v = pred.Maybe
		}
	}
	return v
}

// Match reports whether record id satisfies the predicate (nil filters
// match everything).
func (f *TreeFilter) Match(id data.ID) bool {
	if f == nil {
		return true
	}
	return f.c.Match(id)
}

// CountWhere returns the number of entries in q that satisfy f's
// predicate, pruning subtrees whose digests rule the predicate out and
// short-cutting contained subtrees whose digests prove every record
// qualifies. A nil filter is exactly Count.
func (t *Tree) CountWhere(q geo.Rect, f *TreeFilter) int {
	if f == nil {
		return t.Count(q)
	}
	return t.countWhere(t.root, q, f)
}

func (t *Tree) countWhere(n *Node, q geo.Rect, f *TreeFilter) int {
	t.Charge(n)
	v := f.Verdict(n)
	if v == pred.None {
		return 0
	}
	if v == pred.All && q.ContainsRect(n.mbr) {
		return n.count
	}
	total := 0
	if n.leaf {
		for _, e := range n.entries {
			if q.Contains(e.Pos) && (v == pred.All || f.Match(e.ID)) {
				total++
			}
		}
		return total
	}
	for _, c := range n.children {
		if c.mbr.Intersects(q) {
			total += t.countWhere(c, q, f)
		}
	}
	return total
}

// ReportAllWhereTo returns all entries inside q satisfying f's predicate,
// charging acct, pruning None subtrees during the descent. A nil filter
// is exactly ReportAllTo.
func (t *Tree) ReportAllWhereTo(acct iosim.Accountant, q geo.Rect, f *TreeFilter) []data.Entry {
	if f == nil {
		return t.ReportAllTo(acct, q)
	}
	if acct == nil {
		acct = t.cfg.Device
	}
	var out []data.Entry
	t.searchWhere(acct, t.root, q, f, &out)
	return out
}

func (t *Tree) searchWhere(acct iosim.Accountant, n *Node, q geo.Rect, f *TreeFilter, out *[]data.Entry) {
	acct.Access(n.page)
	v := f.Verdict(n)
	if v == pred.None {
		return
	}
	if n.leaf {
		for _, e := range n.entries {
			if q.Contains(e.Pos) && (v == pred.All || f.Match(e.ID)) {
				*out = append(*out, e)
			}
		}
		return
	}
	for _, c := range n.children {
		if c.mbr.Intersects(q) {
			t.searchWhere(acct, c, q, f, out)
		}
	}
}
