package rtree

import (
	"sort"
	"testing"
	"testing/quick"

	"storm/internal/data"
	"storm/internal/geo"
	"storm/internal/iosim"
	"storm/internal/stats"
)

// genEntries produces n clustered points in [0,1000)^2 x [0,1000).
func genEntries(n int, seed int64) []data.Entry {
	rng := stats.NewRNG(seed)
	out := make([]data.Entry, n)
	for i := range out {
		// A mix of clusters and uniform background.
		var p geo.Vec
		if rng.Bernoulli(0.7) {
			cx := float64(rng.Intn(5)) * 200
			cy := float64(rng.Intn(5)) * 200
			p = geo.Vec{cx + rng.NormFloat64()*20, cy + rng.NormFloat64()*20, rng.Uniform(0, 1000)}
		} else {
			p = geo.Vec{rng.Uniform(0, 1000), rng.Uniform(0, 1000), rng.Uniform(0, 1000)}
		}
		out[i] = data.Entry{ID: data.ID(i), Pos: p}
	}
	return out
}

// bruteRange returns entries inside q by linear scan.
func bruteRange(entries []data.Entry, q geo.Rect) []data.Entry {
	var out []data.Entry
	for _, e := range entries {
		if q.Contains(e.Pos) {
			out = append(out, e)
		}
	}
	return out
}

func idsOf(entries []data.Entry) []uint64 {
	ids := make([]uint64, len(entries))
	for i, e := range entries {
		ids[i] = e.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func sameIDs(a, b []data.Entry) bool {
	x, y := idsOf(a), idsOf(b)
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

func testQueries() []geo.Rect {
	return []geo.Rect{
		geo.NewRect(geo.Vec{100, 100, 0}, geo.Vec{300, 300, 1000}),
		geo.NewRect(geo.Vec{0, 0, 0}, geo.Vec{1000, 1000, 1000}),
		geo.NewRect(geo.Vec{500, 500, 500}, geo.Vec{510, 510, 510}),
		geo.NewRect(geo.Vec{-100, -100, -100}, geo.Vec{-1, -1, -1}), // empty
		geo.NewRect(geo.Vec{190, 190, 100}, geo.Vec{210, 210, 900}),
	}
}

func buildBoth(t *testing.T, entries []data.Entry) []*Tree {
	t.Helper()
	str := MustNew(Config{Fanout: 16})
	str.BulkLoad(entries)
	hil := MustNew(Config{Fanout: 16, Hilbert: true, Bounds: EntryBounds(entries)})
	hil.BulkLoad(entries)
	return []*Tree{str, hil}
}

func TestBulkLoadMatchesBrute(t *testing.T) {
	entries := genEntries(5000, 1)
	for _, tree := range buildBoth(t, entries) {
		if err := tree.Validate(); err != nil {
			t.Fatalf("invalid tree after bulk load: %v", err)
		}
		if tree.Len() != len(entries) {
			t.Fatalf("Len = %d", tree.Len())
		}
		for _, q := range testQueries() {
			got := tree.ReportAll(q)
			want := bruteRange(entries, q)
			if !sameIDs(got, want) {
				t.Errorf("range %v: got %d entries, want %d", q, len(got), len(want))
			}
			if c := tree.Count(q); c != len(want) {
				t.Errorf("Count(%v) = %d, want %d", q, c, len(want))
			}
		}
	}
}

func TestEmptyTree(t *testing.T) {
	tree := MustNew(Config{Fanout: 8})
	q := geo.NewRect(geo.Vec{0, 0, 0}, geo.Vec{1, 1, 1})
	if got := tree.ReportAll(q); len(got) != 0 {
		t.Errorf("empty tree reported %d entries", len(got))
	}
	if tree.Count(q) != 0 {
		t.Error("empty tree count should be 0")
	}
	if err := tree.Validate(); err != nil {
		t.Errorf("empty tree invalid: %v", err)
	}
	if parts := tree.Canonical(q); len(parts) != 0 {
		t.Errorf("empty tree canonical set should be empty, got %d", len(parts))
	}
}

func TestInsertMatchesBrute(t *testing.T) {
	entries := genEntries(3000, 2)
	for _, mode := range []bool{false, true} {
		cfg := Config{Fanout: 8}
		if mode {
			cfg.Hilbert = true
			cfg.Bounds = geo.NewRect(geo.Vec{-200, -200, 0}, geo.Vec{1200, 1200, 1000})
		}
		tree := MustNew(cfg)
		for _, e := range entries {
			tree.Insert(e)
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("hilbert=%v: invalid after inserts: %v", mode, err)
		}
		if tree.Len() != len(entries) {
			t.Fatalf("Len = %d", tree.Len())
		}
		for _, q := range testQueries() {
			got := tree.ReportAll(q)
			want := bruteRange(entries, q)
			if !sameIDs(got, want) {
				t.Errorf("hilbert=%v range %v: got %d, want %d", mode, q, len(got), len(want))
			}
		}
	}
}

func TestDelete(t *testing.T) {
	entries := genEntries(2000, 3)
	for _, tree := range buildBoth(t, entries) {
		rng := stats.NewRNG(99)
		// Delete a random half.
		perm := rng.Perm(len(entries))
		deleted := make(map[data.ID]bool)
		for _, i := range perm[:1000] {
			if !tree.Delete(entries[i]) {
				t.Fatalf("Delete(%v) not found", entries[i])
			}
			deleted[entries[i].ID] = true
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("invalid after deletes: %v", err)
		}
		if tree.Len() != 1000 {
			t.Fatalf("Len = %d, want 1000", tree.Len())
		}
		var remaining []data.Entry
		for _, e := range entries {
			if !deleted[e.ID] {
				remaining = append(remaining, e)
			}
		}
		for _, q := range testQueries() {
			got := tree.ReportAll(q)
			want := bruteRange(remaining, q)
			if !sameIDs(got, want) {
				t.Errorf("after delete, range %v: got %d, want %d", q, len(got), len(want))
			}
		}
		// Deleting a missing entry returns false.
		if tree.Delete(data.Entry{ID: 999999, Pos: geo.Vec{1, 1, 1}}) {
			t.Error("deleting a missing entry should return false")
		}
	}
}

func TestDeleteEverything(t *testing.T) {
	entries := genEntries(500, 4)
	for _, tree := range buildBoth(t, entries) {
		for _, e := range entries {
			if !tree.Delete(e) {
				t.Fatalf("entry %d not found", e.ID)
			}
		}
		if tree.Len() != 0 {
			t.Fatalf("Len = %d after deleting everything", tree.Len())
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("invalid after emptying: %v", err)
		}
		q := geo.NewRect(geo.Vec{0, 0, 0}, geo.Vec{1000, 1000, 1000})
		if got := tree.ReportAll(q); len(got) != 0 {
			t.Errorf("emptied tree reported %d entries", len(got))
		}
	}
}

func TestCanonicalPartition(t *testing.T) {
	entries := genEntries(4000, 5)
	for _, tree := range buildBoth(t, entries) {
		for _, q := range testQueries() {
			parts := tree.Canonical(q)
			total := 0
			seen := make(map[data.ID]bool)
			for _, p := range parts {
				total += p.Matching
				// Collect all matching entries under the part.
				var collect func(n *Node)
				collect = func(n *Node) {
					if n.IsLeaf() {
						for _, e := range n.Entries() {
							if q.Contains(e.Pos) {
								if seen[e.ID] {
									t.Fatalf("entry %d in two canonical parts", e.ID)
								}
								seen[e.ID] = true
							}
						}
						return
					}
					for _, c := range n.Children() {
						collect(c)
					}
				}
				collect(p.Node)
				if p.Full && p.Matching != p.Node.Count() {
					t.Errorf("full part matching %d != count %d", p.Matching, p.Node.Count())
				}
			}
			want := tree.Count(q)
			if total != want {
				t.Errorf("canonical matching sum = %d, want %d", total, want)
			}
			if len(seen) != want {
				t.Errorf("canonical parts cover %d entries, want %d", len(seen), want)
			}
		}
	}
}

func TestCanonicalSize(t *testing.T) {
	entries := genEntries(4000, 6)
	tree := MustNew(Config{Fanout: 16})
	tree.BulkLoad(entries)
	for _, q := range testQueries() {
		// CanonicalSize counts leaves/nodes in the decomposition, which
		// must be at least the number of non-empty parts.
		size := tree.CanonicalSize(q)
		parts := tree.Canonical(q)
		if size < len(parts) {
			t.Errorf("CanonicalSize %d < parts %d", size, len(parts))
		}
	}
}

// Property: insert then delete leaves range results unchanged.
func TestInsertDeleteRoundTrip(t *testing.T) {
	base := genEntries(800, 7)
	tree := MustNew(Config{Fanout: 8})
	tree.BulkLoad(base)
	q := geo.NewRect(geo.Vec{0, 0, 0}, geo.Vec{1000, 1000, 1000})
	before := len(tree.ReportAll(q))

	f := func(x, y, tt float64, idSalt uint16) bool {
		clamp := func(v float64) float64 {
			if v != v || v < -1e6 {
				return 0
			}
			if v > 1e6 {
				return 1e6
			}
			return v
		}
		e := data.Entry{
			ID:  data.ID(1_000_000 + uint64(idSalt)),
			Pos: geo.Vec{clamp(x), clamp(y), clamp(tt)},
		}
		tree.Insert(e)
		if !tree.Delete(e) {
			return false
		}
		if err := tree.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		return len(tree.ReportAll(q)) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSearchEarlyStop(t *testing.T) {
	entries := genEntries(1000, 8)
	tree := MustNew(Config{Fanout: 16})
	tree.BulkLoad(entries)
	q := geo.NewRect(geo.Vec{0, 0, 0}, geo.Vec{1000, 1000, 1000})
	n := 0
	tree.Search(q, func(data.Entry) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Errorf("early stop visited %d entries, want 10", n)
	}
}

func TestIOAccounting(t *testing.T) {
	dev := iosim.NewDevice(0, iosim.DefaultCostModel())
	tree := MustNew(Config{Fanout: 16, Device: dev})
	tree.BulkLoad(genEntries(5000, 9))
	dev.ResetStats()
	q := geo.NewRect(geo.Vec{100, 100, 0}, geo.Vec{300, 300, 1000})
	tree.ReportAll(q)
	if got := dev.Stats().Logical; got == 0 {
		t.Error("range query should charge page accesses")
	}
	// Counting a fully contained range touches far fewer pages than
	// reporting it.
	dev.ResetStats()
	tree.Count(q)
	countIO := dev.Stats().Logical
	dev.ResetStats()
	tree.ReportAll(q)
	reportIO := dev.Stats().Logical
	if countIO > reportIO {
		t.Errorf("count I/O (%d) should not exceed report I/O (%d)", countIO, reportIO)
	}
}

func TestFanoutValidation(t *testing.T) {
	if _, err := New(Config{Fanout: 2}); err == nil {
		t.Error("fanout 2 should be rejected")
	}
	if _, err := New(Config{Hilbert: true}); err == nil {
		t.Error("hilbert without bounds should be rejected")
	}
}

func TestDuplicatePositions(t *testing.T) {
	// Many records at the same point must all be stored and reported.
	entries := make([]data.Entry, 100)
	for i := range entries {
		entries[i] = data.Entry{ID: data.ID(i), Pos: geo.Vec{5, 5, 5}}
	}
	for _, tree := range buildBoth(t, entries) {
		q := geo.NewRect(geo.Vec{5, 5, 5}, geo.Vec{5, 5, 5})
		if got := len(tree.ReportAll(q)); got != 100 {
			t.Errorf("duplicate positions: got %d, want 100", got)
		}
	}
}

func TestVersionBumpsOnMutation(t *testing.T) {
	tree := MustNew(Config{Fanout: 8})
	v0 := tree.Version()
	tree.Insert(data.Entry{ID: 1, Pos: geo.Vec{1, 1, 1}})
	if tree.Version() == v0 {
		t.Error("Insert should bump version")
	}
	v1 := tree.Version()
	tree.Delete(data.Entry{ID: 1, Pos: geo.Vec{1, 1, 1}})
	if tree.Version() == v1 {
		t.Error("Delete should bump version")
	}
}
