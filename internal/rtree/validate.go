package rtree

import "fmt"

// Validate checks the structural invariants of the tree and returns the
// first violation found, or nil. It is exercised by the test suite after
// bulk loads and random insert/delete sequences:
//
//   - every node's MBR tightly covers its contents,
//   - every node's count equals the number of entries in its subtree,
//   - leaves all sit at the same depth,
//   - non-root nodes respect fanout bounds,
//   - in Hilbert mode, each node's LHV is the max Hilbert value below it.
func (t *Tree) Validate() error {
	if t.root == nil {
		return fmt.Errorf("rtree: nil root")
	}
	depth, count, err := t.validate(t.root, true)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rtree: tree size %d but root subtree has %d entries", t.size, count)
	}
	if depth != t.height {
		return fmt.Errorf("rtree: tree height %d but leaves at depth %d", t.height, depth)
	}
	return nil
}

func (t *Tree) validate(n *Node, isRoot bool) (depth, count int, err error) {
	if n.leaf {
		if !isRoot && len(n.entries) > t.cfg.Fanout {
			return 0, 0, fmt.Errorf("rtree: leaf overflow: %d entries > fanout %d", len(n.entries), t.cfg.Fanout)
		}
		mbr := emptyRect()
		var lhv uint64
		if t.quant != nil && len(n.keys) != len(n.entries) {
			return 0, 0, fmt.Errorf("rtree: leaf key cache holds %d keys for %d entries", len(n.keys), len(n.entries))
		}
		for i, e := range n.entries {
			mbr = mbr.ExtendPoint(e.Pos)
			h := t.hilbertValue(e.Pos)
			if t.quant != nil && n.keys[i] != h {
				return 0, 0, fmt.Errorf("rtree: leaf key cache %d != Hilbert value %d for entry %d", n.keys[i], h, e.ID)
			}
			if h > lhv {
				lhv = h
			}
		}
		if len(n.entries) > 0 && (mbr.Min != n.mbr.Min || mbr.Max != n.mbr.Max) {
			return 0, 0, fmt.Errorf("rtree: leaf MBR %v does not match contents %v", n.mbr, mbr)
		}
		if n.count != len(n.entries) {
			return 0, 0, fmt.Errorf("rtree: leaf count %d != %d entries", n.count, len(n.entries))
		}
		if t.quant != nil && n.lhv != lhv {
			return 0, 0, fmt.Errorf("rtree: leaf LHV %d != computed %d", n.lhv, lhv)
		}
		return 1, n.count, nil
	}

	if len(n.children) > t.cfg.Fanout {
		return 0, 0, fmt.Errorf("rtree: internal overflow: %d children > fanout %d", len(n.children), t.cfg.Fanout)
	}
	if !isRoot && len(n.children) < 2 {
		return 0, 0, fmt.Errorf("rtree: internal node with %d children", len(n.children))
	}
	mbr := emptyRect()
	total := 0
	childDepth := -1
	var lhv uint64
	for _, c := range n.children {
		d, cnt, err := t.validate(c, false)
		if err != nil {
			return 0, 0, err
		}
		if childDepth == -1 {
			childDepth = d
		} else if d != childDepth {
			return 0, 0, fmt.Errorf("rtree: unbalanced: child depths %d and %d", childDepth, d)
		}
		mbr = mbr.Extend(c.mbr)
		total += cnt
		if c.lhv > lhv {
			lhv = c.lhv
		}
	}
	if mbr.Min != n.mbr.Min || mbr.Max != n.mbr.Max {
		return 0, 0, fmt.Errorf("rtree: internal MBR %v does not match children %v", n.mbr, mbr)
	}
	if n.count != total {
		return 0, 0, fmt.Errorf("rtree: internal count %d != children sum %d", n.count, total)
	}
	if t.quant != nil && n.lhv != lhv {
		return 0, 0, fmt.Errorf("rtree: internal LHV %d != children max %d", n.lhv, lhv)
	}
	return childDepth + 1, total, nil
}
