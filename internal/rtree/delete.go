package rtree

import "storm/internal/data"

// Delete removes the entry with the given ID and position. It returns true
// if the entry was found. Underflowing nodes are dissolved and their
// remaining entries reinserted (Guttman's CondenseTree), so the minimum
// fill invariant holds after every delete.
func (t *Tree) Delete(e data.Entry) bool {
	var orphans []data.Entry
	found := t.delete(t.root, e, &orphans)
	if !found {
		return false
	}
	t.version++
	t.size--

	// Shrink the root while it has a single internal child.
	for !t.root.leaf && len(t.root.children) == 1 {
		old := t.root
		t.root = t.root.children[0]
		t.cfg.Device.Invalidate(old.page)
		t.height--
	}

	// Reinsert entries from dissolved nodes. They do not change the net
	// size: delete() already removed them from counts.
	for _, o := range orphans {
		h := t.hilbertValue(o.Pos)
		sibling := t.insert(t.root, o, h)
		if sibling != nil {
			newRoot := t.newNode(false)
			newRoot.children = []*Node{t.root, sibling}
			newRoot.recompute()
			t.chargeWrite(newRoot)
			t.root = newRoot
			t.height++
		}
	}
	return true
}

// delete removes e from the subtree rooted at n, collecting entries of
// dissolved children into orphans. Returns whether the entry was found.
func (t *Tree) delete(n *Node, e data.Entry, orphans *[]data.Entry) bool {
	t.Charge(n)
	if n.leaf {
		for i, cur := range n.entries {
			if cur.ID == e.ID && cur.Pos == e.Pos {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				if n.keys != nil {
					n.keys = append(n.keys[:i], n.keys[i+1:]...)
				}
				n.recompute()
				t.recomputeLHV(n)
				t.chargeWrite(n)
				return true
			}
		}
		return false
	}
	for i, c := range n.children {
		if !c.mbr.Contains(e.Pos) {
			continue
		}
		if !t.delete(c, e, orphans) {
			continue
		}
		// Dissolve an underflowing child (but never the root's last
		// leaf, which may legitimately hold fewer than minFill).
		if t.underflowed(c) {
			n.children = append(n.children[:i], n.children[i+1:]...)
			t.cfg.Device.Invalidate(c.page)
			t.collectEntries(c, orphans)
		}
		n.recompute()
		t.chargeWrite(n)
		return true
	}
	return false
}

// underflowed reports whether a non-root node violates minimum fill.
func (t *Tree) underflowed(n *Node) bool {
	if n.leaf {
		return len(n.entries) < t.minFill
	}
	return len(n.children) < 2
}

// collectEntries appends every data entry under n to out.
func (t *Tree) collectEntries(n *Node, out *[]data.Entry) {
	if n.leaf {
		*out = append(*out, n.entries...)
		return
	}
	for _, c := range n.children {
		t.collectEntries(c, out)
	}
}
