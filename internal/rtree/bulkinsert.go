package rtree

import (
	"sort"

	"storm/internal/data"
)

// InsertBatch adds a batch of entries in one pass — the streaming ingest
// drain path. In Hilbert mode the batch is sorted by Hilbert value once,
// routed down the tree as contiguous runs (each internal node partitions
// its run among its children with binary searches on the sorted keys),
// and appended to each target leaf in a single splice; overflowing nodes
// split into as many evenly-filled siblings as needed. Against per-entry
// Insert this removes the per-record descent, the per-record placement
// search, and the per-record leaf shift, which is what lets the drain
// keep up with producer-side append rates (see package ingest).
//
// The entries slice is reordered in place. Classic (non-Hilbert) trees
// fall back to per-entry insertion; callers there should pre-sort with
// SortSTR to keep inserts spatially clustered.
func (t *Tree) InsertBatch(entries []data.Entry) {
	if len(entries) == 0 {
		return
	}
	if t.quant == nil {
		for _, e := range entries {
			t.Insert(e)
		}
		return
	}
	t.version++
	keys := make([]uint64, len(entries))
	for i, e := range entries {
		keys[i] = t.hilbertValue(e.Pos)
	}
	sort.Sort(&hilbertSorter{entries: entries, keys: keys})

	siblings := t.batchInsert(t.root, entries, keys)
	if len(siblings) > 0 {
		// Grow upward: pack the root and its new siblings into evenly
		// filled parents until one node remains (multiple levels when a
		// large batch fans a small tree out by more than one). Even
		// chunks, not greedy fanout groups: a greedy pack can leave a
		// 1-child straggler, violating minimum fill.
		level := append([]*Node{t.root}, siblings...)
		for len(level) > 1 {
			level = t.packEven(level)
			t.height++
		}
		t.root = level[0]
	}
	t.size += len(entries)
}

// batchInsert merges the Hilbert-sorted run (es, ks) into the subtree at
// n and returns the sibling nodes created by overflow splits, in order,
// at n's level. Counts, MBRs and LHVs along the path are rebuilt on the
// way back up.
func (t *Tree) batchInsert(n *Node, es []data.Entry, ks []uint64) []*Node {
	t.Charge(n)
	n.version++
	if n.leaf {
		n.entries = append(n.entries, es...)
		n.keys = append(n.keys, ks...)
		if len(n.entries) <= t.cfg.Fanout {
			n.recompute()
			t.recomputeLHV(n)
			t.chargeWrite(n)
			return nil
		}
		return t.splitLeafEven(n)
	}

	// Partition the run among the children exactly as per-entry
	// chooseChild would: child i receives the keys <= its LHV that no
	// earlier child claimed; whatever exceeds every LHV falls through to
	// the last child. ks is sorted, so each share is a contiguous prefix
	// of the remainder, found by binary search.
	rebuilt := make([]*Node, 0, len(n.children))
	lo := 0
	for ci, c := range n.children {
		hi := len(es)
		if ci < len(n.children)-1 {
			lhv := c.lhv
			hi = lo + sort.Search(len(ks)-lo, func(j int) bool { return ks[lo+j] > lhv })
		}
		rebuilt = append(rebuilt, c)
		if hi > lo {
			rebuilt = append(rebuilt, t.batchInsert(c, es[lo:hi], ks[lo:hi])...)
			lo = hi
		}
	}
	n.children = rebuilt
	if len(n.children) <= t.cfg.Fanout {
		n.recompute()
		t.chargeWrite(n)
		return nil
	}
	return t.splitInternalEven(n)
}

// splitLeafEven redistributes an overflowing leaf's entries into the
// fewest evenly-sized leaves that respect the fanout, keeping the first
// chunk in n and returning the rest as new siblings. The merged contents
// are re-sorted by Hilbert key first so chunk boundaries cut the curve,
// not the arrival order (minimum fill holds: with m = ceil(len/fanout)
// chunks, every chunk has more than fanout/2 entries).
func (t *Tree) splitLeafEven(n *Node) []*Node {
	sort.Sort(&hilbertSorter{entries: n.entries, keys: n.keys})
	total := len(n.entries)
	m := (total + t.cfg.Fanout - 1) / t.cfg.Fanout
	es, ks := n.entries, n.keys
	siblings := make([]*Node, 0, m-1)
	lo := total/m + min1(total%m) // chunk 0 stays in n
	for i := 1; i < m; i++ {
		hi := lo + total/m
		if i < total%m {
			hi++
		}
		dst := t.newNode(true)
		dst.entries = append(dst.entries, es[lo:hi]...)
		dst.keys = append(dst.keys, ks[lo:hi]...)
		siblings = append(siblings, dst)
		lo = hi
	}
	n.entries = es[:total/m+min1(total%m)]
	n.keys = ks[:len(n.entries)]
	n.recompute()
	t.recomputeLHV(n)
	t.chargeWrite(n)
	for _, s := range siblings {
		s.recompute()
		t.recomputeLHV(s)
		t.chargeWrite(s)
	}
	return siblings
}

// min1 returns 1 when rem > 0, else 0 — the first chunk's share of the
// remainder in the even split.
func min1(rem int) int {
	if rem > 0 {
		return 1
	}
	return 0
}

// packEven groups an ordered run of same-level nodes under the fewest
// evenly-filled parents that respect the fanout (every parent gets at
// least fanout/2 children when more than one is needed).
func (t *Tree) packEven(children []*Node) []*Node {
	total := len(children)
	m := (total + t.cfg.Fanout - 1) / t.cfg.Fanout
	out := make([]*Node, 0, m)
	lo := 0
	for i := 0; i < m; i++ {
		hi := lo + total/m
		if i < total%m {
			hi++
		}
		p := t.newNode(false)
		p.children = append(p.children, children[lo:hi]...)
		p.recompute()
		t.chargeWrite(p)
		out = append(out, p)
		lo = hi
	}
	return out
}

// splitInternalEven redistributes an overflowing internal node's children
// into the fewest evenly-sized nodes that respect the fanout, keeping the
// first chunk in n and returning the rest as new siblings.
func (t *Tree) splitInternalEven(n *Node) []*Node {
	children := n.children
	total := len(children)
	m := (total + t.cfg.Fanout - 1) / t.cfg.Fanout
	siblings := make([]*Node, 0, m-1)
	lo := total/m + min1(total%m) // chunk 0 stays in n
	for i := 1; i < m; i++ {
		hi := lo + total/m
		if i < total%m {
			hi++
		}
		dst := t.newNode(false)
		dst.children = append(dst.children, children[lo:hi]...)
		siblings = append(siblings, dst)
		lo = hi
	}
	n.children = children[:total/m+min1(total%m)]
	n.recompute()
	t.chargeWrite(n)
	for _, s := range siblings {
		s.recompute()
		t.chargeWrite(s)
	}
	return siblings
}
