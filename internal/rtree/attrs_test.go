package rtree

import (
	"math"
	"testing"

	"storm/internal/data"
	"storm/internal/geo"
	"storm/internal/pred"
	"storm/internal/stats"
)

// attrDataset builds a dataset of n records with one "speed" column equal
// to the record's x coordinate (spatially correlated, so node digests are
// tight) and one "noise" column.
func attrDataset(t *testing.T, n int, seed int64) *data.Dataset {
	t.Helper()
	ds := data.NewDataset("attrs")
	ds.AddNumericColumn("speed")
	ds.AddNumericColumn("noise")
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		pos := geo.Vec{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
		id := ds.AppendFast(pos)
		if err := ds.SetNumeric("speed", id, pos[0]); err != nil {
			t.Fatal(err)
		}
		if err := ds.SetNumeric("noise", id, rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

func compilePred(t *testing.T, ds *data.Dataset, terms ...pred.Term) *pred.Compiled {
	t.Helper()
	c, err := pred.Normalize(terms).Compile(ds)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// bruteCountWhere counts ds records in q matching c the slow way.
func bruteCountWhere(ds *data.Dataset, q geo.Rect, c *pred.Compiled) int {
	n := 0
	for i := 0; i < ds.Len(); i++ {
		id := data.ID(i)
		if q.Contains(ds.Pos(id)) && c.Match(id) {
			n++
		}
	}
	return n
}

func TestSummariesTightAndInvalidated(t *testing.T) {
	ds := attrDataset(t, 2000, 7)
	tr := MustNew(Config{Fanout: 8})
	tr.BulkLoad(ds.Entries())
	sums := NewSummaries(tr, ds)
	sums.Precompute()

	var check func(n *Node)
	check = func(n *Node) {
		st := sums.Stats(n)
		i, ok := sums.AttrIndex("speed")
		if !ok {
			t.Fatal("speed not summarized")
		}
		want := pred.EmptyStats()
		col, _ := ds.NumericColumn("speed")
		var collect func(m *Node)
		collect = func(m *Node) {
			for _, e := range m.Entries() {
				want.Add(col[e.ID])
			}
			for _, c := range m.Children() {
				collect(c)
			}
		}
		collect(n)
		if st[i] != want {
			t.Fatalf("digest not tight: node has %+v, subtree holds %+v", st[i], want)
		}
		for _, c := range n.Children() {
			check(c)
		}
	}
	check(tr.Root())

	// Mutations must invalidate digests along the touched path.
	id := ds.AppendFast(geo.Vec{50, 50, 50})
	if err := ds.SetNumeric("speed", id, 12345); err != nil {
		t.Fatal(err)
	}
	if err := ds.SetNumeric("noise", id, 0); err != nil {
		t.Fatal(err)
	}
	tr.Insert(ds.Entry(id))
	i, _ := sums.AttrIndex("speed")
	if got := sums.Stats(tr.Root())[i].Max; got != 12345 {
		t.Fatalf("insert did not refresh root digest: max = %v, want 12345", got)
	}
	tr.Delete(ds.Entry(id))
	if got := sums.Stats(tr.Root())[i].Max; got >= 12345 {
		t.Fatalf("delete did not refresh root digest: max = %v", got)
	}
}

func TestCountWhereMatchesBrute(t *testing.T) {
	ds := attrDataset(t, 3000, 11)
	tr := MustNew(Config{Fanout: 8})
	tr.BulkLoad(ds.Entries())
	sums := NewSummaries(tr, ds)
	sums.Precompute()

	queries := []geo.Rect{
		{Min: geo.Vec{0, 0, 0}, Max: geo.Vec{100, 100, 100}},
		{Min: geo.Vec{10, 10, 10}, Max: geo.Vec{60, 70, 90}},
		{Min: geo.Vec{40, 40, 0}, Max: geo.Vec{45, 45, 100}},
	}
	preds := [][]pred.Term{
		{{Attr: "speed", Lo: 0, Hi: 10, HiOpen: true}},
		{{Attr: "speed", Lo: 90, Hi: math.Inf(1)}},
		{{Attr: "speed", Lo: 20, Hi: 80}, {Attr: "noise", Lo: 0.5, Hi: math.Inf(1), LoOpen: true}},
		{{Attr: "speed", Lo: 200, Hi: 300}}, // nothing matches
	}
	for qi, q := range queries {
		for pi, terms := range preds {
			c := compilePred(t, ds, terms...)
			f := NewTreeFilter(c, sums)
			got := tr.CountWhere(q, f)
			want := bruteCountWhere(ds, q, c)
			if got != want {
				t.Errorf("query %d pred %d: CountWhere = %d, want %d", qi, pi, got, want)
			}
			rep := tr.ReportAllWhereTo(nil, q, NewTreeFilter(c, sums))
			if len(rep) != want {
				t.Errorf("query %d pred %d: ReportAllWhereTo returned %d, want %d", qi, pi, len(rep), want)
			}
			for _, e := range rep {
				if !q.Contains(e.Pos) || !c.Match(e.ID) {
					t.Fatalf("query %d pred %d: reported non-matching entry %v", qi, pi, e)
				}
			}
		}
	}

	// Low-selectivity predicates must actually prune on the correlated
	// attribute.
	c := compilePred(t, ds, pred.Term{Attr: "speed", Lo: 0, Hi: 1, HiOpen: true})
	f := NewTreeFilter(c, sums)
	tr.CountWhere(queries[0], f)
	if f.Pruned == 0 {
		t.Error("correlated low-selectivity predicate pruned nothing")
	}
}

func TestTreeFilterNilAndMissingAttr(t *testing.T) {
	ds := attrDataset(t, 500, 3)
	tr := MustNew(Config{Fanout: 8})
	tr.BulkLoad(ds.Entries())
	q := geo.Rect{Min: geo.Vec{0, 0, 0}, Max: geo.Vec{100, 100, 100}}
	if got, want := tr.CountWhere(q, nil), tr.Count(q); got != want {
		t.Errorf("nil filter CountWhere = %d, want Count %d", got, want)
	}
	// A filter with no summaries still filters records, just without
	// pruning.
	c := compilePred(t, ds, pred.Term{Attr: "speed", Lo: 0, Hi: 50})
	f := NewTreeFilter(c, nil)
	if got, want := tr.CountWhere(q, f), bruteCountWhere(ds, q, c); got != want {
		t.Errorf("summary-less CountWhere = %d, want %d", got, want)
	}
	if f.Pruned != 0 {
		t.Errorf("summary-less filter claimed %d prunes", f.Pruned)
	}
}
