package rtree

import (
	"math"
	"sort"

	"storm/internal/data"
	"storm/internal/geo"
)

// BulkLoad builds the tree from scratch over the given entries, replacing
// any existing contents. The sort order follows Config.Packing:
// Sort-Tile-Recursive (the default) or Hilbert order (the Hilbert R-tree
// construction the paper's RS-tree is built on). Both produce leaves
// filled to the fanout, giving the compact trees the paper assumes.
// Hilbert-mode trees remain insertable after an STR load: inserts still
// place by Hilbert value and leaf LHVs are exact maxima either way.
func (t *Tree) BulkLoad(entries []data.Entry) {
	t.version++
	t.size = len(entries)
	if len(entries) == 0 {
		t.root = t.newNode(true)
		t.height = 1
		return
	}
	sorted := make([]data.Entry, len(entries))
	copy(sorted, entries)
	if t.cfg.Packing == PackHilbert {
		t.sortHilbert(sorted)
	} else {
		sortSTR(sorted, t.cfg.Fanout)
	}

	leaves := t.packLeaves(sorted)
	t.height = 1
	for len(leaves) > 1 {
		leaves = t.packInternal(leaves)
		t.height++
	}
	t.root = leaves[0]
}

// sortHilbert orders entries by Hilbert value of their position.
func (t *Tree) sortHilbert(entries []data.Entry) {
	keys := make([]uint64, len(entries))
	for i, e := range entries {
		keys[i] = t.hilbertValue(e.Pos)
	}
	sort.Sort(&hilbertSorter{entries: entries, keys: keys})
}

type hilbertSorter struct {
	entries []data.Entry
	keys    []uint64
}

func (s *hilbertSorter) Len() int           { return len(s.entries) }
func (s *hilbertSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *hilbertSorter) Swap(i, j int) {
	s.entries[i], s.entries[j] = s.entries[j], s.entries[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// SortSTR arranges entries in Sort-Tile-Recursive order (see sortSTR) —
// the packing order bulk loads use. The streaming ingest drain sorts each
// insert batch with it so consecutive one-at-a-time inserts stay spatially
// clustered and leaf splits remain coherent.
func SortSTR(entries []data.Entry, fanout int) { sortSTR(entries, fanout) }

// sortSTR arranges entries in Sort-Tile-Recursive order for 3 dimensions:
// sort by x, cut into vertical slabs, sort each slab by y, cut into runs,
// sort each run by t. Consecutive groups of fanout entries then form
// spatially coherent leaves.
func sortSTR(entries []data.Entry, fanout int) {
	n := len(entries)
	leaves := (n + fanout - 1) / fanout
	// Number of slabs along each of the first two axes.
	s := int(math.Ceil(math.Cbrt(float64(leaves))))
	if s < 1 {
		s = 1
	}

	sort.Slice(entries, func(i, j int) bool { return entries[i].Pos[0] < entries[j].Pos[0] })
	slabSize := (n + s - 1) / s * 1 // entries per x-slab before y-split
	// Each x-slab should contain about s*s leaves worth of entries.
	slabSize = s * s * fanout
	if slabSize < 1 {
		slabSize = 1
	}
	for lo := 0; lo < n; lo += slabSize {
		hi := lo + slabSize
		if hi > n {
			hi = n
		}
		slab := entries[lo:hi]
		sort.Slice(slab, func(i, j int) bool { return slab[i].Pos[1] < slab[j].Pos[1] })
		runSize := s * fanout
		if runSize < 1 {
			runSize = 1
		}
		for rlo := 0; rlo < len(slab); rlo += runSize {
			rhi := rlo + runSize
			if rhi > len(slab) {
				rhi = len(slab)
			}
			run := slab[rlo:rhi]
			sort.Slice(run, func(i, j int) bool { return run[i].Pos[2] < run[j].Pos[2] })
		}
	}
}

// packLeaves groups consecutive sorted entries into full leaves.
func (t *Tree) packLeaves(entries []data.Entry) []*Node {
	fan := t.cfg.Fanout
	nodes := make([]*Node, 0, (len(entries)+fan-1)/fan)
	for lo := 0; lo < len(entries); lo += fan {
		hi := lo + fan
		if hi > len(entries) {
			hi = len(entries)
		}
		n := t.newNode(true)
		n.entries = append(n.entries, entries[lo:hi]...)
		n.count = len(n.entries)
		for _, e := range n.entries {
			n.mbr = n.mbr.ExtendPoint(e.Pos)
		}
		if t.quant != nil {
			// Populate the key cache and take the max for the LHV — not the
			// last key: only Hilbert-sorted input guarantees the last entry
			// carries the largest value, and STR packing is the default.
			n.keys = make([]uint64, len(n.entries))
			for i, e := range n.entries {
				v := t.hilbertValue(e.Pos)
				n.keys[i] = v
				if v > n.lhv {
					n.lhv = v
				}
			}
		}
		t.chargeWrite(n)
		nodes = append(nodes, n)
	}
	return nodes
}

// packInternal groups consecutive child nodes into parents.
func (t *Tree) packInternal(children []*Node) []*Node {
	fan := t.cfg.Fanout
	nodes := make([]*Node, 0, (len(children)+fan-1)/fan)
	for lo := 0; lo < len(children); lo += fan {
		hi := lo + fan
		if hi > len(children) {
			hi = len(children)
		}
		n := t.newNode(false)
		n.children = append(n.children, children[lo:hi]...)
		for _, c := range n.children {
			n.mbr = n.mbr.Extend(c.mbr)
			n.count += c.count
			if c.lhv > n.lhv {
				n.lhv = c.lhv
			}
		}
		t.chargeWrite(n)
		nodes = append(nodes, n)
	}
	return nodes
}

// bulkBounds computes the MBR of a set of entries; used by callers that
// need bounds before constructing a Hilbert tree.
func bulkBounds(entries []data.Entry) geo.Rect {
	r := geo.EmptyRect()
	for _, e := range entries {
		r = r.ExtendPoint(e.Pos)
	}
	return r
}

// EntryBounds returns the MBR covering all given entries.
func EntryBounds(entries []data.Entry) geo.Rect { return bulkBounds(entries) }
