package rtree

import (
	"storm/internal/data"
	"storm/internal/geo"
	"storm/internal/iosim"
)

// Search reports every entry whose position lies inside q, invoking fn for
// each. fn returning false stops the search early. Every visited node is
// charged as one logical page access, making Search the cost reference for
// the paper's "RangeReport" baseline.
func (t *Tree) Search(q geo.Rect, fn func(data.Entry) bool) {
	t.search(t.cfg.Device, t.root, q, fn)
}

// SearchTo is Search with page accesses charged to acct instead of the
// tree's shared device — per-query I/O attribution for samplers that range-
// report (pass an iosim.Counter forwarding to the shared device).
func (t *Tree) SearchTo(acct iosim.Accountant, q geo.Rect, fn func(data.Entry) bool) {
	if acct == nil {
		acct = t.cfg.Device
	}
	t.search(acct, t.root, q, fn)
}

func (t *Tree) search(acct iosim.Accountant, n *Node, q geo.Rect, fn func(data.Entry) bool) bool {
	acct.Access(n.page)
	if n.leaf {
		for _, e := range n.entries {
			if q.Contains(e.Pos) {
				if !fn(e) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range n.children {
		if !c.mbr.Intersects(q) {
			continue
		}
		if !t.search(acct, c, q, fn) {
			return false
		}
	}
	return true
}

// ReportAll returns all entries inside q. This is the QueryFirst baseline's
// first phase and costs O(r(N) + q) node/entry touches.
func (t *Tree) ReportAll(q geo.Rect) []data.Entry {
	return t.ReportAllTo(t.cfg.Device, q)
}

// ReportAllTo is ReportAll with page accesses charged to acct.
func (t *Tree) ReportAllTo(acct iosim.Accountant, q geo.Rect) []data.Entry {
	var out []data.Entry
	t.SearchTo(acct, q, func(e data.Entry) bool {
		out = append(out, e)
		return true
	})
	return out
}

// Count returns |P ∩ q| exactly. Subtrees fully inside q contribute their
// stored counts without descending, so the cost is proportional to the size
// of the canonical set rather than to the answer.
func (t *Tree) Count(q geo.Rect) int {
	return t.count(t.root, q)
}

func (t *Tree) count(n *Node, q geo.Rect) int {
	t.Charge(n)
	if q.ContainsRect(n.mbr) {
		return n.count
	}
	total := 0
	if n.leaf {
		for _, e := range n.entries {
			if q.Contains(e.Pos) {
				total++
			}
		}
		return total
	}
	for _, c := range n.children {
		if c.mbr.Intersects(q) {
			total += t.count(c, q)
		}
	}
	return total
}

// CanonicalPart is one element of a canonical decomposition of a range
// query: either a node whose subtree lies fully inside the query, or a
// partially intersecting leaf whose entries must be filtered individually.
type CanonicalPart struct {
	Node *Node
	// Full is true when every entry under Node satisfies the query.
	Full bool
	// Matching is the number of entries under Node that satisfy the
	// query: Node.Count() when Full, otherwise the filtered leaf count.
	Matching int
}

// Canonical computes the canonical set R_Q for a range query: the maximal
// nodes fully contained in q plus the partially-covered leaves. The total
// Matching across parts equals Count(q). The parts' subtrees are pairwise
// disjoint, which is what lets the RS-tree draw without-replacement samples
// from per-part buffers independently.
func (t *Tree) Canonical(q geo.Rect) []CanonicalPart {
	var parts []CanonicalPart
	t.canonical(t.root, q, &parts)
	return parts
}

func (t *Tree) canonical(n *Node, q geo.Rect, parts *[]CanonicalPart) {
	t.Charge(n)
	if !n.mbr.Intersects(q) {
		return
	}
	if q.ContainsRect(n.mbr) {
		if n.count > 0 {
			*parts = append(*parts, CanonicalPart{Node: n, Full: true, Matching: n.count})
		}
		return
	}
	if n.leaf {
		m := 0
		for _, e := range n.entries {
			if q.Contains(e.Pos) {
				m++
			}
		}
		if m > 0 {
			*parts = append(*parts, CanonicalPart{Node: n, Full: false, Matching: m})
		}
		return
	}
	for _, c := range n.children {
		t.canonical(c, q, parts)
	}
}

// CanonicalSize returns r(N), the number of canonical parts for q, without
// materializing them. Used by the query optimizer's cost model.
func (t *Tree) CanonicalSize(q geo.Rect) int {
	n := 0
	t.canonicalSize(t.root, q, &n)
	return n
}

func (t *Tree) canonicalSize(n *Node, q geo.Rect, acc *int) {
	if !n.mbr.Intersects(q) {
		return
	}
	if q.ContainsRect(n.mbr) || n.leaf {
		*acc++
		return
	}
	for _, c := range n.children {
		t.canonicalSize(c, q, acc)
	}
}
