package rtree

import (
	"testing"

	"storm/internal/data"
)

// TestInsertBatchMatchesBrute checks the batched insert path against
// brute force in both modes, growing from a bulk-loaded base — the
// streaming drain scenario: an STR-packed tree absorbing Hilbert-sorted
// run merges.
func TestInsertBatchMatchesBrute(t *testing.T) {
	all := genEntries(8000, 17)
	base, batch := all[:5000], all[5000:]
	for _, mode := range []bool{false, true} {
		cfg := Config{Fanout: 16}
		if mode {
			cfg.Hilbert = true
			cfg.Bounds = EntryBounds(all)
		}
		tree := MustNew(cfg)
		tree.BulkLoad(base)
		// Several uneven slices so merges hit partially-filled leaves.
		for lo := 0; lo < len(batch); lo += 700 {
			hi := lo + 700
			if hi > len(batch) {
				hi = len(batch)
			}
			chunk := append([]data.Entry(nil), batch[lo:hi]...)
			tree.InsertBatch(chunk)
			if err := tree.Validate(); err != nil {
				t.Fatalf("hilbert=%v: invalid after batch [%d:%d]: %v", mode, lo, hi, err)
			}
		}
		if tree.Len() != len(all) {
			t.Fatalf("hilbert=%v: Len = %d, want %d", mode, tree.Len(), len(all))
		}
		for _, q := range testQueries() {
			got := tree.ReportAll(q)
			want := bruteRange(all, q)
			if !sameIDs(got, want) {
				t.Errorf("hilbert=%v range %v: got %d, want %d", mode, q, len(got), len(want))
			}
			if c := tree.Count(q); c != len(want) {
				t.Errorf("hilbert=%v Count(%v) = %d, want %d", mode, q, c, len(want))
			}
		}
	}
}

// TestInsertBatchGrowsEmptyTree feeds one large batch to an empty tree:
// the even multi-way splits must fan the single leaf out across several
// levels in one call, and the result must stay valid and complete.
func TestInsertBatchGrowsEmptyTree(t *testing.T) {
	entries := genEntries(20000, 23)
	tree := MustNew(Config{Fanout: 8, Hilbert: true, Bounds: EntryBounds(entries)})
	tree.InsertBatch(append([]data.Entry(nil), entries...))
	if err := tree.Validate(); err != nil {
		t.Fatalf("invalid after giant batch: %v", err)
	}
	if tree.Len() != len(entries) || tree.Height() < 3 {
		t.Fatalf("Len = %d, Height = %d; want %d entries over multiple levels",
			tree.Len(), tree.Height(), len(entries))
	}
	for _, q := range testQueries() {
		if got, want := tree.ReportAll(q), bruteRange(entries, q); !sameIDs(got, want) {
			t.Errorf("range %v: got %d, want %d", q, len(got), len(want))
		}
	}
	// A zero-length batch is a no-op.
	v := tree.Version()
	tree.InsertBatch(nil)
	if tree.Version() != v || tree.Len() != len(entries) {
		t.Fatal("empty batch mutated the tree")
	}
}

// TestInsertBatchThenDelete interleaves batch inserts with deletes: the
// key cache and LHVs must survive condensation and reinsertion.
func TestInsertBatchThenDelete(t *testing.T) {
	all := genEntries(4000, 31)
	tree := MustNew(Config{Fanout: 16, Hilbert: true, Bounds: EntryBounds(all)})
	tree.BulkLoad(all[:2000])
	tree.InsertBatch(append([]data.Entry(nil), all[2000:]...))
	for i := 0; i < 1500; i++ {
		if !tree.Delete(all[i]) {
			t.Fatalf("entry %d not found for delete", i)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("invalid after deletes: %v", err)
	}
	remaining := all[1500:]
	for _, q := range testQueries() {
		if got, want := tree.ReportAll(q), bruteRange(remaining, q); !sameIDs(got, want) {
			t.Errorf("range %v: got %d, want %d", q, len(got), len(want))
		}
	}
}
