// Package rtree implements the disk-aware R-tree substrate underneath
// STORM's sampling indexes.
//
// The tree supports STR and Hilbert bulk loading, dynamic inserts and
// deletes, range reporting, exact range counting via per-node subtree
// counts, and canonical-set computation. Every node is mapped to a page of
// a simulated block device (package iosim), so traversals produce the
// I/O counts that the paper's Figure 3(a) compares across sampling methods.
//
// Each node additionally stores the cardinality of its subtree. Subtree
// counts are what make weighted random descent (Olken's RandomPath) and the
// RS-tree's acceptance/rejection node sampling possible, and they give
// O(log N)-node exact range counts for query planning.
//
// # Concurrency
//
// A Tree is safe for any number of concurrent readers: traversal accessors
// (Root, Children, Entries, Count, MBR, Version, Search, ReportAll,
// Canonical) never mutate tree structure, and the per-node Aux attachment
// is published through an atomic pointer so readers may regenerate and
// re-publish derived per-node state (the RS-tree's sample buffers) while
// other readers are traversing. Mutations (Insert, Delete, BulkLoad) must
// be externally serialized against all readers — package engine does this
// with a per-dataset RWMutex.
package rtree

import (
	"fmt"
	"sync/atomic"

	"storm/internal/data"
	"storm/internal/geo"
	"storm/internal/hilbert"
	"storm/internal/iosim"
)

// DefaultFanout is the default maximum number of entries (or children) per
// node. With ~32-byte leaf entries this models a 2 KiB page; the benchmark
// harness overrides it to explore other block sizes.
const DefaultFanout = 64

// Packing selects the bulk-load sort order. The zero value is STR, the
// default: Sort-Tile-Recursive tiling yields leaves with lower perimeter
// and overlap than a one-dimensional Hilbert sort on the box queries the
// sampling workloads issue, so frontier scans touch fewer boundary nodes.
// Hilbert packing stays selectable for trees whose curve locality matters
// more than tiling quality.
type Packing int

const (
	// PackSTR packs bulk loads in Sort-Tile-Recursive order (default).
	PackSTR Packing = iota
	// PackHilbert packs bulk loads in Hilbert-curve order. Requires
	// Hilbert mode (the quantizer supplies the ordering).
	PackHilbert
)

// Config controls tree shape and I/O accounting.
type Config struct {
	// Fanout is the maximum entries per node (>= 4).
	Fanout int
	// Device charges page accesses; nil means no accounting.
	Device iosim.Accountant
	// Hilbert enables Hilbert ordering: inserts place entries by Hilbert
	// value (and PackHilbert becomes available). Requires Bounds.
	Hilbert bool
	// Bounds is the coordinate space used to quantize Hilbert values.
	// Required when Hilbert is true; ignored otherwise.
	Bounds geo.Rect
	// HilbertOrder is the curve order (bits per dimension); 0 means 16.
	HilbertOrder uint
	// Packing selects the bulk-load sort order; the zero value is STR.
	Packing Packing
}

func (c Config) withDefaults() Config {
	if c.Fanout == 0 {
		c.Fanout = DefaultFanout
	}
	if c.Device == nil {
		c.Device = iosim.Discard
	}
	if c.HilbertOrder == 0 {
		c.HilbertOrder = 16
	}
	return c
}

// Node is an R-tree node. Leaves hold data entries; internal nodes hold
// children. Fields are unexported; samplers use the accessor methods.
type Node struct {
	page     iosim.PageID
	leaf     bool
	mbr      geo.Rect
	count    int // data entries in this subtree
	lhv      uint64
	version  uint64 // bumped when subtree contents change
	children []*Node
	entries  []data.Entry
	// keys caches the Hilbert value of each leaf entry, index-parallel to
	// entries (Hilbert mode only; nil in classic mode). The quantizer walk
	// costs hundreds of nanoseconds, and without the cache a single insert
	// recomputes it O(log fanout) times inside the placement search — the
	// streaming drain path is insert-rate-bound on exactly that.
	keys []uint64
	// aux is the per-node attachment used by the RS-tree sample buffers.
	// It is read and published atomically so concurrent queries can
	// regenerate a stale buffer without racing each other: generation
	// happens off to the side, then the finished value is swapped in.
	aux atomic.Pointer[any]
	// attrs caches the subtree's per-attribute digests (see Summaries),
	// keyed by version like the RS-tree buffers: any mutation along the
	// node's path bumps version, invalidating the cache, and racing
	// recomputes publish identical values (the digest is a pure function
	// of subtree contents under the reader lock).
	attrs atomic.Pointer[nodeAttrs]
}

// IsLeaf reports whether n is a leaf node.
func (n *Node) IsLeaf() bool { return n.leaf }

// MBR returns the node's minimum bounding rectangle.
func (n *Node) MBR() geo.Rect { return n.mbr }

// Count returns the number of data entries in the subtree rooted at n.
func (n *Node) Count() int { return n.count }

// Children returns the children of an internal node (nil for leaves).
func (n *Node) Children() []*Node { return n.children }

// Entries returns the data entries of a leaf node (nil for internal nodes).
func (n *Node) Entries() []data.Entry { return n.entries }

// Version returns a counter that changes whenever the subtree's contents
// change; the RS-tree uses it to detect stale sample buffers.
func (n *Node) Version() uint64 { return n.version }

// Aux returns the auxiliary attachment set by SetAux, or nil. It is safe
// to call concurrently with SetAux.
func (n *Node) Aux() any {
	p := n.aux.Load()
	if p == nil {
		return nil
	}
	return *p
}

// SetAux attaches auxiliary per-node state (e.g. an RS-tree sample buffer).
// The value is published atomically: concurrent readers observe either the
// previous attachment or the new one, never a torn mix. Callers must treat
// a published value as immutable — to change it, build a replacement and
// SetAux it.
func (n *Node) SetAux(v any) { n.aux.Store(&v) }

// PageID returns the simulated page this node occupies.
func (n *Node) PageID() iosim.PageID { return iosim.PageID(n.page) }

// Tree is a dynamic R-tree over point data.
type Tree struct {
	cfg      Config
	root     *Node
	size     int
	height   int // number of levels; 1 = root is a leaf
	nextPage iosim.PageID
	version  uint64
	quant    *hilbert.Quantizer
	minFill  int
}

// New returns an empty tree with the given configuration.
func New(cfg Config) (*Tree, error) {
	cfg = cfg.withDefaults()
	if cfg.Fanout < 4 {
		return nil, fmt.Errorf("rtree: fanout %d too small (min 4)", cfg.Fanout)
	}
	t := &Tree{
		cfg:     cfg,
		minFill: cfg.Fanout * 2 / 5,
	}
	if t.minFill < 1 {
		t.minFill = 1
	}
	if cfg.Packing != PackSTR && cfg.Packing != PackHilbert {
		return nil, fmt.Errorf("rtree: unknown packing %d", cfg.Packing)
	}
	if cfg.Packing == PackHilbert && !cfg.Hilbert {
		return nil, fmt.Errorf("rtree: PackHilbert requires Hilbert mode")
	}
	if cfg.Hilbert {
		if cfg.Bounds.IsEmpty() || cfg.Bounds == (geo.Rect{}) {
			return nil, fmt.Errorf("rtree: Hilbert mode requires non-empty Bounds")
		}
		curve := hilbert.MustNew(geo.Dims, cfg.HilbertOrder)
		q, err := hilbert.NewQuantizer(curve,
			cfg.Bounds.Min[:], cfg.Bounds.Max[:])
		if err != nil {
			return nil, fmt.Errorf("rtree: %w", err)
		}
		t.quant = q
	}
	t.root = t.newNode(true)
	t.height = 1
	return t, nil
}

// MustNew is New for configurations known to be valid.
func MustNew(cfg Config) *Tree {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Tree) newNode(leaf bool) *Node {
	t.nextPage++
	return &Node{page: t.nextPage, leaf: leaf, mbr: geo.EmptyRect()}
}

// Len returns the number of data entries in the tree.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (1 = root is a leaf).
func (t *Tree) Height() int { return t.height }

// Root returns the root node; samplers traverse from here. The caller must
// charge page accesses through Charge as it descends.
func (t *Tree) Root() *Node { return t.root }

// Fanout returns the maximum entries per node.
func (t *Tree) Fanout() int { return t.cfg.Fanout }

// Version returns a counter incremented by every mutation.
func (t *Tree) Version() uint64 { return t.version }

// Bounds returns the MBR of all indexed entries.
func (t *Tree) Bounds() geo.Rect { return t.root.mbr }

// Charge accounts one logical page access for visiting n.
func (t *Tree) Charge(n *Node) { t.cfg.Device.Access(n.page) }

// Device returns the accountant the tree charges page accesses to. Samplers
// use it as the default target when no per-query accountant is attached.
func (t *Tree) Device() iosim.Accountant { return t.cfg.Device }

// chargeWrite accounts a page write for n.
func (t *Tree) chargeWrite(n *Node) { t.cfg.Device.Write(n.page) }

// hilbertValue returns the Hilbert value of p, or 0 in non-Hilbert mode.
func (t *Tree) hilbertValue(p geo.Vec) uint64 {
	if t.quant == nil {
		return 0
	}
	return t.quant.Value3(p[0], p[1], p[2])
}

// NodeCount returns the total number of nodes, walking the whole tree.
// Intended for tests and benchmarks, not hot paths.
func (t *Tree) NodeCount() int {
	var count func(n *Node) int
	count = func(n *Node) int {
		c := 1
		for _, ch := range n.children {
			c += count(ch)
		}
		return c
	}
	return count(t.root)
}
