package rtree

import (
	"sort"

	"storm/internal/data"
	"storm/internal/geo"
)

// Insert adds one entry to the tree. In Hilbert mode the entry is placed by
// its Hilbert value, preserving the Hilbert ordering of the leaf level; in
// classic mode the least-enlargement (Guttman) descent with quadratic
// splits is used.
func (t *Tree) Insert(e data.Entry) {
	t.version++
	h := t.hilbertValue(e.Pos)
	sibling := t.insert(t.root, e, h)
	if sibling != nil {
		// Root split: grow the tree by one level.
		newRoot := t.newNode(false)
		newRoot.children = []*Node{t.root, sibling}
		newRoot.recompute()
		t.chargeWrite(newRoot)
		t.root = newRoot
		t.height++
	}
	t.size++
}

// insert recursively places e under n and returns a split sibling when n
// overflows (nil otherwise).
func (t *Tree) insert(n *Node, e data.Entry, h uint64) *Node {
	t.Charge(n)
	n.version++
	if n.leaf {
		if t.quant != nil {
			// Keep leaf entries sorted by Hilbert value, searching the
			// cached keys rather than re-quantizing each probed entry.
			idx := sort.Search(len(n.keys), func(i int) bool {
				return n.keys[i] >= h
			})
			n.entries = append(n.entries, data.Entry{})
			copy(n.entries[idx+1:], n.entries[idx:])
			n.entries[idx] = e
			n.keys = append(n.keys, 0)
			copy(n.keys[idx+1:], n.keys[idx:])
			n.keys[idx] = h
		} else {
			n.entries = append(n.entries, e)
		}
		n.count++
		n.mbr = n.mbr.ExtendPoint(e.Pos)
		if h > n.lhv {
			n.lhv = h
		}
		t.chargeWrite(n)
		if len(n.entries) > t.cfg.Fanout {
			return t.splitLeaf(n)
		}
		return nil
	}

	childIdx := t.chooseChild(n, e, h)
	child := n.children[childIdx]
	sibling := t.insert(child, e, h)
	n.count++
	n.mbr = n.mbr.ExtendPoint(e.Pos)
	if h > n.lhv {
		n.lhv = h
	}
	if sibling != nil {
		// Place the sibling immediately after the split child to keep
		// Hilbert order among children.
		n.children = append(n.children, nil)
		copy(n.children[childIdx+2:], n.children[childIdx+1:])
		n.children[childIdx+1] = sibling
		t.chargeWrite(n)
		if len(n.children) > t.cfg.Fanout {
			return t.splitInternal(n)
		}
	}
	return nil
}

// chooseChild selects the child of n that should receive e.
func (t *Tree) chooseChild(n *Node, e data.Entry, h uint64) int {
	if t.quant != nil {
		// Hilbert R-tree descent: the first child whose largest Hilbert
		// value is >= h; fall through to the last child otherwise.
		for i, c := range n.children {
			if c.lhv >= h {
				return i
			}
		}
		return len(n.children) - 1
	}
	// Guttman: minimal volume enlargement, ties by smaller volume.
	er := pointRect(e)
	best := 0
	bestEnl := n.children[0].mbr.Enlargement(er)
	bestVol := n.children[0].mbr.Volume()
	for i := 1; i < len(n.children); i++ {
		c := n.children[i]
		enl := c.mbr.Enlargement(er)
		vol := c.mbr.Volume()
		if enl < bestEnl || (enl == bestEnl && vol < bestVol) {
			best, bestEnl, bestVol = i, enl, vol
		}
	}
	return best
}

// pointRect returns the degenerate rectangle of an entry's position.
func pointRect(e data.Entry) geo.Rect { return geo.RectFromPoint(e.Pos) }

// emptyRect is a local alias kept next to its uses in recompute.
func emptyRect() geo.Rect { return geo.EmptyRect() }

// splitLeaf splits an overflowing leaf and returns the new right sibling.
func (t *Tree) splitLeaf(n *Node) *Node {
	var right *Node
	if t.quant != nil {
		// Entries are Hilbert-sorted: split at the midpoint to preserve
		// the ordering invariant; the key cache splits with them.
		mid := len(n.entries) / 2
		right = t.newNode(true)
		right.entries = append(right.entries, n.entries[mid:]...)
		n.entries = n.entries[:mid]
		right.keys = append(right.keys, n.keys[mid:]...)
		n.keys = n.keys[:mid]
	} else {
		right = t.newNode(true)
		t.quadraticSplitLeaf(n, right)
	}
	n.recompute()
	t.recomputeLHV(n)
	right.recompute()
	t.recomputeLHV(right)
	t.chargeWrite(n)
	t.chargeWrite(right)
	return right
}

// splitInternal splits an overflowing internal node.
func (t *Tree) splitInternal(n *Node) *Node {
	var right *Node
	if t.quant != nil {
		mid := len(n.children) / 2
		right = t.newNode(false)
		right.children = append(right.children, n.children[mid:]...)
		n.children = n.children[:mid]
	} else {
		right = t.newNode(false)
		t.quadraticSplitInternal(n, right)
	}
	n.recompute()
	right.recompute()
	t.chargeWrite(n)
	t.chargeWrite(right)
	return right
}

// quadraticSplitLeaf distributes n's entries between n and right using
// Guttman's quadratic split on point seeds.
func (t *Tree) quadraticSplitLeaf(n, right *Node) {
	entries := n.entries
	// Pick the two seeds that waste the most volume if grouped.
	s1, s2 := 0, 1
	worst := -1.0
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := entries[i].Pos.Dist(entries[j].Pos)
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}
	left := []data.Entry{entries[s1]}
	rightE := []data.Entry{entries[s2]}
	lm := pointRect(entries[s1])
	rm := pointRect(entries[s2])
	minEach := t.minFill
	for i, e := range entries {
		if i == s1 || i == s2 {
			continue
		}
		remaining := len(entries) - i - 1
		// Force assignment when a side needs everything left to reach
		// minimum fill.
		if len(left)+remaining+1 <= minEach {
			left = append(left, e)
			lm = lm.ExtendPoint(e.Pos)
			continue
		}
		if len(rightE)+remaining+1 <= minEach {
			rightE = append(rightE, e)
			rm = rm.ExtendPoint(e.Pos)
			continue
		}
		dl := lm.Enlargement(pointRect(e))
		dr := rm.Enlargement(pointRect(e))
		if dl < dr || (dl == dr && len(left) <= len(rightE)) {
			left = append(left, e)
			lm = lm.ExtendPoint(e.Pos)
		} else {
			rightE = append(rightE, e)
			rm = rm.ExtendPoint(e.Pos)
		}
	}
	n.entries = left
	right.entries = rightE
}

// quadraticSplitInternal distributes n's children between n and right.
func (t *Tree) quadraticSplitInternal(n, right *Node) {
	children := n.children
	s1, s2 := 0, 1
	worst := -1.0
	for i := 0; i < len(children); i++ {
		for j := i + 1; j < len(children); j++ {
			waste := children[i].mbr.Extend(children[j].mbr).Volume() -
				children[i].mbr.Volume() - children[j].mbr.Volume()
			if waste > worst {
				worst, s1, s2 = waste, i, j
			}
		}
	}
	left := []*Node{children[s1]}
	rightC := []*Node{children[s2]}
	lm := children[s1].mbr
	rm := children[s2].mbr
	minEach := t.minFill
	for i, c := range children {
		if i == s1 || i == s2 {
			continue
		}
		remaining := len(children) - i - 1
		if len(left)+remaining+1 <= minEach {
			left = append(left, c)
			lm = lm.Extend(c.mbr)
			continue
		}
		if len(rightC)+remaining+1 <= minEach {
			rightC = append(rightC, c)
			rm = rm.Extend(c.mbr)
			continue
		}
		dl := lm.Enlargement(c.mbr)
		dr := rm.Enlargement(c.mbr)
		if dl < dr || (dl == dr && len(left) <= len(rightC)) {
			left = append(left, c)
			lm = lm.Extend(c.mbr)
		} else {
			rightC = append(rightC, c)
			rm = rm.Extend(c.mbr)
		}
	}
	n.children = left
	right.children = rightC
}

// recompute rebuilds n's MBR, count, and (for internal nodes) LHV from its
// direct contents.
func (n *Node) recompute() {
	n.mbr = emptyRect()
	n.version++
	if n.leaf {
		n.count = len(n.entries)
		for _, e := range n.entries {
			n.mbr = n.mbr.ExtendPoint(e.Pos)
		}
		return
	}
	n.count = 0
	n.lhv = 0
	for _, c := range n.children {
		n.mbr = n.mbr.Extend(c.mbr)
		n.count += c.count
		if c.lhv > n.lhv {
			n.lhv = c.lhv
		}
	}
}

// recomputeLHV refreshes a leaf's largest Hilbert value after a split or
// delete, from the cached keys. Max, not last: after an STR bulk load the
// leaf's keys are not Hilbert-sorted (see BulkLoad).
func (t *Tree) recomputeLHV(n *Node) {
	if t.quant == nil || !n.leaf {
		return
	}
	n.lhv = 0
	for _, h := range n.keys {
		if h > n.lhv {
			n.lhv = h
		}
	}
}
