package docstore

import (
	"fmt"
	"testing"

	"storm/internal/dfs"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	c, err := dfs.New(dfs.Config{Nodes: 3, Replication: 2, ChunkSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	return Open(c)
}

func TestInsertGetScan(t *testing.T) {
	s := newStore(t)
	id1, err := s.Insert("tweets", Document{"user": "alice", "lat": 40.7})
	if err != nil {
		t.Fatal(err)
	}
	id2, _ := s.Insert("tweets", Document{"user": "bob"})
	if id1 == id2 {
		t.Fatal("ids must be distinct")
	}
	doc, ok, err := s.Get("tweets", id1)
	if err != nil || !ok {
		t.Fatalf("Get: %v %v", ok, err)
	}
	if doc["user"] != "alice" {
		t.Errorf("doc = %v", doc)
	}
	n, err := s.Count("tweets")
	if err != nil || n != 2 {
		t.Errorf("count = %d, %v", n, err)
	}
	var seen []int64
	if err := s.Scan("tweets", func(id int64, d Document) bool {
		seen = append(seen, id)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != id1 || seen[1] != id2 {
		t.Errorf("scan order = %v", seen)
	}
}

func TestSegmentFlushAndPersistence(t *testing.T) {
	s := newStore(t)
	n := SegmentDocs*2 + 100 // forces two flushed segments + buffer
	for i := 0; i < n; i++ {
		if _, err := s.Insert("big", Document{"i": float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	if err := s.Scan("big", func(id int64, d Document) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("scan saw %d docs, want %d", count, n)
	}
	// Explicit flush persists the tail buffer too.
	if err := s.Flush("big"); err != nil {
		t.Fatal(err)
	}
	count = 0
	s.Scan("big", func(int64, Document) bool { count++; return true })
	if count != n {
		t.Fatalf("after flush: %d docs", count)
	}
}

func TestDeleteTombstones(t *testing.T) {
	s := newStore(t)
	ids, err := s.InsertMany("c", []Document{{"v": 1.0}, {"v": 2.0}, {"v": 3.0}})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Delete("c", ids[1]) {
		t.Fatal("delete failed")
	}
	if s.Delete("c", ids[1]) {
		t.Error("double delete should fail")
	}
	if s.Delete("c", 9999) {
		t.Error("deleting unknown id should fail")
	}
	n, _ := s.Count("c")
	if n != 2 {
		t.Errorf("count = %d", n)
	}
	if _, ok, _ := s.Get("c", ids[1]); ok {
		t.Error("deleted doc still visible")
	}
	var vals []float64
	s.Scan("c", func(id int64, d Document) bool {
		vals = append(vals, d["v"].(float64))
		return true
	})
	if len(vals) != 2 || vals[0] != 1 || vals[1] != 3 {
		t.Errorf("scan after delete = %v", vals)
	}
}

func TestDeleteInFlushedSegment(t *testing.T) {
	s := newStore(t)
	var ids []int64
	for i := 0; i < SegmentDocs+10; i++ {
		id, _ := s.Insert("c", Document{"i": float64(i)})
		ids = append(ids, id)
	}
	// ids[0] lives in a flushed segment now.
	if !s.Delete("c", ids[0]) {
		t.Fatal("delete of flushed doc failed")
	}
	count := 0
	s.Scan("c", func(id int64, d Document) bool {
		if id == ids[0] {
			t.Fatal("tombstoned doc scanned")
		}
		count++
		return true
	})
	if count != SegmentDocs+9 {
		t.Errorf("count = %d", count)
	}
}

func TestScanEarlyStop(t *testing.T) {
	s := newStore(t)
	for i := 0; i < 10; i++ {
		s.Insert("c", Document{"i": float64(i)})
	}
	n := 0
	s.Scan("c", func(int64, Document) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop after %d", n)
	}
}

func TestUnknownCollection(t *testing.T) {
	s := newStore(t)
	if err := s.Scan("nope", func(int64, Document) bool { return true }); err == nil {
		t.Error("scanning unknown collection should error")
	}
	if _, err := s.Count("nope"); err == nil {
		t.Error("counting unknown collection should error")
	}
	if err := s.Flush("nope"); err == nil {
		t.Error("flushing unknown collection should error")
	}
	if s.Delete("nope", 1) {
		t.Error("deleting from unknown collection should fail")
	}
}

func TestCollections(t *testing.T) {
	s := newStore(t)
	s.Insert("b", Document{})
	s.Insert("a", Document{})
	got := s.Collections()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("collections = %v", got)
	}
}

func TestManyCollections(t *testing.T) {
	s := newStore(t)
	for i := 0; i < 5; i++ {
		coll := fmt.Sprintf("c%d", i)
		for j := 0; j < 20; j++ {
			s.Insert(coll, Document{"j": float64(j)})
		}
	}
	for i := 0; i < 5; i++ {
		n, err := s.Count(fmt.Sprintf("c%d", i))
		if err != nil || n != 20 {
			t.Errorf("c%d count = %d, %v", i, n, err)
		}
	}
}
