// Package docstore is STORM's storage engine: JSON document collections
// persisted to the simulated DFS, mirroring the paper's distributed
// MongoDB installation ("uses a DFS and the JSON format for its record
// structures"). Collections are partitioned into segment files of a fixed
// document count so large collections spread across DFS chunks and nodes.
//
// The store is deliberately simple — append, get, scan, delete — because
// STORM's query path reads documents through the columnar data.Dataset;
// the docstore exists for import/export, persistence and the distributed
// storage accounting of the benchmarks.
package docstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"storm/internal/dfs"
)

// SegmentDocs is how many documents share one DFS segment file.
const SegmentDocs = 1024

// Document is a schemaless JSON object.
type Document map[string]any

// Store is a collection-oriented document store over a DFS cluster.
// It is safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	cluster *dfs.Cluster
	colls   map[string]*collection
}

type collection struct {
	name     string
	segments int   // number of persisted segments
	count    int   // total live documents (excluding tombstones)
	nextID   int64 // monotonically increasing document ids
	// buffer holds documents not yet flushed into a segment.
	buffer []storedDoc
	// deleted marks tombstoned ids.
	deleted map[int64]bool
}

type storedDoc struct {
	ID  int64    `json:"_id"`
	Doc Document `json:"doc"`
}

// Open returns a store backed by the given DFS cluster.
func Open(cluster *dfs.Cluster) *Store {
	return &Store{cluster: cluster, colls: make(map[string]*collection)}
}

func (s *Store) coll(name string, create bool) (*collection, error) {
	c, ok := s.colls[name]
	if !ok {
		if !create {
			return nil, fmt.Errorf("docstore: no such collection %q", name)
		}
		c = &collection{name: name, deleted: make(map[int64]bool)}
		s.colls[name] = c
	}
	return c, nil
}

// Insert appends a document to the collection (created on first use) and
// returns its assigned id.
func (s *Store) Insert(coll string, doc Document) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.coll(coll, true)
	if err != nil {
		return 0, err
	}
	c.nextID++
	id := c.nextID
	c.buffer = append(c.buffer, storedDoc{ID: id, Doc: doc})
	c.count++
	if len(c.buffer) >= SegmentDocs {
		if err := s.flushLocked(c); err != nil {
			return 0, err
		}
	}
	return id, nil
}

// InsertMany appends documents in bulk.
func (s *Store) InsertMany(coll string, docs []Document) ([]int64, error) {
	ids := make([]int64, 0, len(docs))
	for _, d := range docs {
		id, err := s.Insert(coll, d)
		if err != nil {
			return ids, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// Flush persists any buffered documents of the collection to the DFS.
func (s *Store) Flush(coll string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.coll(coll, false)
	if err != nil {
		return err
	}
	return s.flushLocked(c)
}

func (s *Store) flushLocked(c *collection) error {
	if len(c.buffer) == 0 {
		return nil
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, d := range c.buffer {
		if err := enc.Encode(d); err != nil {
			return fmt.Errorf("docstore: encoding %s/%d: %w", c.name, d.ID, err)
		}
	}
	path := segmentPath(c.name, c.segments)
	if err := s.cluster.Write(path, buf.Bytes()); err != nil {
		return fmt.Errorf("docstore: writing segment: %w", err)
	}
	c.segments++
	c.buffer = nil
	return nil
}

func segmentPath(coll string, seg int) string {
	return fmt.Sprintf("docstore/%s/seg-%06d.jsonl", coll, seg)
}

// Delete tombstones a document by id. It returns false when the id does
// not exist or is already deleted.
func (s *Store) Delete(coll string, id int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.coll(coll, false)
	if err != nil {
		return false
	}
	if id < 1 || id > c.nextID || c.deleted[id] {
		return false
	}
	c.deleted[id] = true
	c.count--
	return true
}

// Get returns a document by id, or ok=false when missing/deleted.
func (s *Store) Get(coll string, id int64) (Document, bool, error) {
	var found Document
	err := s.Scan(coll, func(gotID int64, d Document) bool {
		if gotID == id {
			found = d
			return false
		}
		return true
	})
	if err != nil {
		return nil, false, err
	}
	return found, found != nil, nil
}

// Scan iterates all live documents of the collection in id order,
// reading persisted segments from the DFS and then the in-memory buffer.
// fn returning false stops the scan.
func (s *Store) Scan(coll string, fn func(id int64, d Document) bool) error {
	s.mu.Lock()
	c, err := s.coll(coll, false)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	segments := c.segments
	buffered := make([]storedDoc, len(c.buffer))
	copy(buffered, c.buffer)
	deleted := make(map[int64]bool, len(c.deleted))
	for id := range c.deleted {
		deleted[id] = true
	}
	s.mu.Unlock()

	for seg := 0; seg < segments; seg++ {
		raw, err := s.cluster.Read(segmentPath(coll, seg))
		if err != nil {
			return fmt.Errorf("docstore: reading segment %d: %w", seg, err)
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		for dec.More() {
			var d storedDoc
			if err := dec.Decode(&d); err != nil {
				return fmt.Errorf("docstore: corrupt segment %d of %q: %w", seg, coll, err)
			}
			if deleted[d.ID] {
				continue
			}
			if !fn(d.ID, d.Doc) {
				return nil
			}
		}
	}
	for _, d := range buffered {
		if deleted[d.ID] {
			continue
		}
		if !fn(d.ID, d.Doc) {
			return nil
		}
	}
	return nil
}

// Count returns the number of live documents.
func (s *Store) Count(coll string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.coll(coll, false)
	if err != nil {
		return 0, err
	}
	return c.count, nil
}

// Collections lists collection names, sorted.
func (s *Store) Collections() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.colls))
	for n := range s.colls {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
