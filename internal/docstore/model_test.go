package docstore

import (
	"testing"

	"storm/internal/dfs"
	"storm/internal/stats"
)

// TestStoreMatchesMapModel drives random insert/delete/scan sequences
// against the store and a map-based reference model.
func TestStoreMatchesMapModel(t *testing.T) {
	cluster, err := dfs.New(dfs.Config{Nodes: 2, Replication: 1, ChunkSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	s := Open(cluster)
	rng := stats.NewRNG(23)

	type model struct {
		live map[int64]float64 // id -> payload
		ids  []int64           // insertion order
	}
	m := &model{live: make(map[int64]float64)}

	for op := 0; op < 3000; op++ {
		switch {
		case len(m.ids) == 0 || rng.Bernoulli(0.6):
			v := rng.Float64()
			id, err := s.Insert("c", Document{"v": v})
			if err != nil {
				t.Fatal(err)
			}
			if _, dup := m.live[id]; dup {
				t.Fatalf("op %d: duplicate id %d", op, id)
			}
			m.live[id] = v
			m.ids = append(m.ids, id)
		case rng.Bernoulli(0.5):
			// Delete a random known id (possibly already deleted).
			id := m.ids[rng.Intn(len(m.ids))]
			_, alive := m.live[id]
			if got := s.Delete("c", id); got != alive {
				t.Fatalf("op %d: Delete(%d) = %v, model %v", op, id, got, alive)
			}
			delete(m.live, id)
		default:
			// Occasionally force a flush to move docs into segments.
			if err := s.Flush("c"); err != nil {
				t.Fatal(err)
			}
		}

		if op%250 == 0 {
			n, err := s.Count("c")
			if err != nil {
				t.Fatal(err)
			}
			if n != len(m.live) {
				t.Fatalf("op %d: count %d, model %d", op, n, len(m.live))
			}
			seen := make(map[int64]float64)
			prev := int64(0)
			if err := s.Scan("c", func(id int64, d Document) bool {
				if id <= prev {
					t.Fatalf("op %d: scan out of order (%d after %d)", op, id, prev)
				}
				prev = id
				seen[id] = d["v"].(float64)
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if len(seen) != len(m.live) {
				t.Fatalf("op %d: scan saw %d docs, model %d", op, len(seen), len(m.live))
			}
			for id, v := range m.live {
				if seen[id] != v {
					t.Fatalf("op %d: doc %d = %v, model %v", op, id, seen[id], v)
				}
			}
		}
	}
}
