package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"storm/internal/engine"
	"storm/internal/gen"
	"storm/internal/geo"
	"storm/internal/ingest"
)

// newIngestServer builds a server whose POST /ingest buffers drain fast,
// so tests can wait on queryability without long sleeps.
func newIngestServer(t *testing.T, cfg ingest.Config) (*httptest.Server, *Server) {
	t.Helper()
	eng := engine.New(engine.Config{Seed: 3})
	ds := gen.Uniform(20000, 5, geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100})
	if _, err := eng.Register(ds, engine.IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	srv := New(eng, WithIngestConfig(cfg))
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts, srv
}

func ndjson(n int, t0 float64) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `{"lon":%g,"lat":%g,"time":%g}`+"\n",
			float64(i%100), float64(i%100), t0+float64(i))
	}
	return b.String()
}

// TestIngestEndpoint: NDJSON records posted to /ingest/{name} are accepted
// into the buffer, drain into the indexes, and advance the watermark the
// response reports.
func TestIngestEndpoint(t *testing.T) {
	ts, _ := newIngestServer(t, ingest.Config{FlushInterval: time.Millisecond})
	resp, err := http.Post(ts.URL+"/ingest/uniform", "application/x-ndjson",
		strings.NewReader(ndjson(700, 1000)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var out IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Accepted != 700 {
		t.Errorf("accepted = %d, want 700", out.Accepted)
	}
	if out.Watermark != 1000+699 {
		t.Errorf("watermark = %v, want %v", out.Watermark, 1000+699)
	}
	// The drained records are queryable: a LAST window anchored at the
	// stream's watermark covers exactly the streamed records.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(
			`{"statement": "SELECT COUNT FROM uniform WHERE REGION(0,0,100,100) LAST 700s SAMPLES 400"}`))
		if err != nil {
			t.Fatal(err)
		}
		var last map[string]any
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			last = map[string]any{}
			if err := json.Unmarshal([]byte(line), &last); err != nil {
				t.Fatal(err)
			}
		}
		resp.Body.Close()
		if last == nil {
			t.Fatal("no snapshots")
		}
		v, _ := last["value"].(float64)
		if v > 350 && v < 1050 { // true count 700 once drained
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("windowed count never converged on the streamed records: %v", last)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestIngestBackpressure429: when the buffer is at MaxPending the endpoint
// answers 429 with Retry-After and an exact accepted count instead of
// buffering without bound.
func TestIngestBackpressure429(t *testing.T) {
	// A huge flush threshold and interval keep the drain asleep, so the
	// second request finds the buffer over its tiny MaxPending.
	ts, _ := newIngestServer(t, ingest.Config{
		MaxPending: 10, FlushRecords: 1 << 20, FlushInterval: time.Hour,
	})
	resp, err := http.Post(ts.URL+"/ingest/uniform", "application/x-ndjson",
		strings.NewReader(ndjson(20, 0)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("first post status = %d, want 200 (MaxPending checked on entry)", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/ingest/uniform", "application/x-ndjson",
		strings.NewReader(ndjson(5, 100)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var out IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Accepted != 0 {
		t.Errorf("accepted = %d, want 0 (whole batch rejected)", out.Accepted)
	}
	if out.Error == "" {
		t.Error("429 body carries no error")
	}
}

// TestIngestBadRecord400: a malformed NDJSON line fails the request with
// 400, but every record before it is still accepted (and said so).
func TestIngestBadRecord400(t *testing.T) {
	ts, _ := newIngestServer(t, ingest.Config{FlushInterval: time.Millisecond})
	body := ndjson(3, 0) + "{not json}\n" + ndjson(2, 50)
	resp, err := http.Post(ts.URL+"/ingest/uniform", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var out IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Accepted != 3 {
		t.Errorf("accepted = %d, want the 3 records before the bad line", out.Accepted)
	}
}

// TestIngestUnknownDataset404.
func TestIngestUnknownDataset(t *testing.T) {
	ts, _ := newIngestServer(t, ingest.Config{})
	resp, err := http.Post(ts.URL+"/ingest/nope", "application/x-ndjson",
		strings.NewReader(ndjson(1, 0)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

// TestContractInfeasible422: once the planner has telemetry, a contract
// whose error target provably cannot fit its deadline is refused up front
// with 422 and the refusal explains the gap.
func TestContractInfeasible422(t *testing.T) {
	ts := newTestServer(t)
	// Warm the planner's per-dataset profile: a feasible contract runs and
	// records sampling-throughput telemetry.
	warm := `{"statement": "SELECT AVG(value) FROM uniform WHERE REGION(10,10,90,90) ERROR 10% AT CONFIDENCE 95% WITHIN 5s"}`
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(warm))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("warm query status = %d", resp.StatusCode)
	}
	// 0.01% error in 1ms is beyond any plan the profile can predict.
	bad := `{"statement": "SELECT AVG(value) FROM uniform WHERE REGION(10,10,90,90) ERROR 0.01% AT CONFIDENCE 99% WITHIN 1ms"}`
	resp, err = http.Post(ts.URL+"/query", "application/json", strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, want 422: %s", resp.StatusCode, raw)
	}
	var out ContractRefusedJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Error == "" || out.TargetError != 0.0001 || out.DeadlineMS != 1 {
		t.Errorf("refusal = %+v", out)
	}
	if out.PredictedRelError <= out.TargetError {
		t.Errorf("refusal predicts %v error, inside the %v target it refused",
			out.PredictedRelError, out.TargetError)
	}
}
