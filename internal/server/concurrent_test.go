package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
)

// TestConcurrentQueryStreams fires many NDJSON query streams at the server
// at once, mixed with concurrent inserts (run with -race). Every stream
// must terminate with a well-formed done snapshot; the insert responses
// must all succeed.
func TestConcurrentQueryStreams(t *testing.T) {
	ts := newTestServer(t)

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients+1)

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			body := `{"statement": "ESTIMATE AVG(value) FROM uniform WHERE REGION(20,20,60,60) SAMPLES 500"}`
			resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewBufferString(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != 200 {
				errs <- fmt.Errorf("client %d: status %d", c, resp.StatusCode)
				return
			}
			var last SnapshotJSON
			snaps := 0
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
					errs <- fmt.Errorf("client %d: bad snapshot line: %v", c, err)
					return
				}
				snaps++
			}
			if err := sc.Err(); err != nil {
				errs <- fmt.Errorf("client %d: reading stream: %v", c, err)
				return
			}
			if snaps == 0 || !last.Done {
				errs <- fmt.Errorf("client %d: %d snapshots, done=%v", c, snaps, last.Done)
				return
			}
			if last.Samples == 0 || last.Value == 0 {
				errs <- fmt.Errorf("client %d: empty final snapshot %+v", c, last)
			}
		}(c)
	}

	// Concurrent inserts through the HTTP API.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			body := `{"records": [{"lon": 40, "lat": 40, "time": 50, "num": {"value": 100}}]}`
			resp, err := http.Post(ts.URL+"/datasets/uniform/records", "application/json", bytes.NewBufferString(body))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				errs <- fmt.Errorf("insert %d: status %d", i, resp.StatusCode)
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
