package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"storm/internal/engine"
	"storm/internal/gen"
	"storm/internal/geo"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	eng := engine.New(engine.Config{Seed: 3})
	ds := gen.Uniform(20000, 5, geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100})
	if _, err := eng.Register(ds, engine.IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	tweets, _ := gen.Tweets(gen.TweetsConfig{N: 10000, Users: 20, Seed: 5})
	if _, err := eng.Register(tweets, engine.IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng))
	t.Cleanup(ts.Close)
	return ts
}

func TestListDatasets(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var infos []DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("datasets = %+v", infos)
	}
	if infos[0].Name != "tweets" || infos[1].Name != "uniform" {
		t.Errorf("names = %s, %s", infos[0].Name, infos[1].Name)
	}
	if infos[1].Records != 20000 {
		t.Errorf("uniform records = %d", infos[1].Records)
	}
}

func TestGetDataset(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/datasets/uniform")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info DatasetInfo
	json.NewDecoder(resp.Body).Decode(&info)
	if info.Name != "uniform" || len(info.Numeric) != 1 || info.Numeric[0] != "value" {
		t.Errorf("info = %+v", info)
	}
	resp2, err := http.Get(ts.URL + "/datasets/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != 404 {
		t.Errorf("unknown dataset status = %d", resp2.StatusCode)
	}
}

func TestQueryStreamsNDJSON(t *testing.T) {
	ts := newTestServer(t)
	body := `{"statement": "ESTIMATE AVG(value) FROM uniform WHERE REGION(20,20,60,60) SAMPLES 500"}`
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q", ct)
	}
	var snaps []SnapshotJSON
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var s SnapshotJSON
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		snaps = append(snaps, s)
	}
	if len(snaps) < 3 {
		t.Fatalf("snapshots = %d", len(snaps))
	}
	last := snaps[len(snaps)-1]
	if !last.Done || last.Samples != 500 || last.Kind != "AVG" {
		t.Errorf("final snapshot = %+v", last)
	}
	// CIs tighten across the stream.
	if snaps[0].HalfWidth <= last.HalfWidth {
		t.Errorf("CI did not tighten: %v -> %v", snaps[0].HalfWidth, last.HalfWidth)
	}
	// The sample mean should be near 100 (gen.Uniform's value column).
	if last.Value < 95 || last.Value > 105 {
		t.Errorf("value = %v", last.Value)
	}
}

func TestQueryNonEstimateRendersOnce(t *testing.T) {
	ts := newTestServer(t)
	body := `{"statement": "KDE FROM tweets WHERE REGION(-125,24,-66,50) GRID 12x8 SAMPLES 300"}`
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out["output"], "kde:") {
		t.Errorf("kde output = %q", out["output"])
	}
}

func TestQueryErrors(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		body   string
		status int
	}{
		{`not json`, 400},
		{`{"statement": "garbage"}`, 400},
		{`{"statement": "COUNT FROM missing"}`, 404},
		{`{"statement": "ESTIMATE AVG(nope) FROM uniform"}`, 400},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Errorf("%q: status = %d, want %d", c.body, resp.StatusCode, c.status)
		}
	}
}

func TestInsertThenQuery(t *testing.T) {
	ts := newTestServer(t)
	var recs bytes.Buffer
	recs.WriteString(`{"records": [`)
	for i := 0; i < 50; i++ {
		if i > 0 {
			recs.WriteString(",")
		}
		fmt.Fprintf(&recs, `{"lon": 40.5, "lat": 40.5, "time": 50, "num": {"value": 999}}`)
	}
	recs.WriteString(`]}`)
	resp, err := http.Post(ts.URL+"/datasets/uniform/records", "application/json", &recs)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("insert status = %d: %s", resp.StatusCode, raw)
	}
	var ins map[string]any
	json.NewDecoder(resp.Body).Decode(&ins)
	if ins["inserted"].(float64) != 50 {
		t.Errorf("inserted = %v", ins["inserted"])
	}
	// A count over the insertion point sees the new records.
	body := `{"statement": "COUNT FROM uniform WHERE REGION(40.4, 40.4, 40.6, 40.6) AND TIME(49, 51)"}`
	resp2, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	sc := bufio.NewScanner(resp2.Body)
	var last SnapshotJSON
	for sc.Scan() {
		json.Unmarshal(sc.Bytes(), &last)
	}
	if last.Value < 50 {
		t.Errorf("count after insert = %v, want >= 50", last.Value)
	}
}

func TestInsertErrors(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := http.Post(ts.URL+"/datasets/nope/records", "application/json", strings.NewReader(`{}`))
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("unknown dataset insert status = %d", resp.StatusCode)
	}
	resp2, _ := http.Post(ts.URL+"/datasets/uniform/records", "application/json", strings.NewReader(`{"records":[]}`))
	resp2.Body.Close()
	if resp2.StatusCode != 400 {
		t.Errorf("empty insert status = %d", resp2.StatusCode)
	}
}

func TestExplainEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/explain?q=" + strings.ReplaceAll(
		"ESTIMATE AVG(value) FROM uniform WHERE REGION(20,20,60,60)", " ", "%20"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var plan PlanJSON
	if err := json.NewDecoder(resp.Body).Decode(&plan); err != nil {
		t.Fatal(err)
	}
	if plan.Dataset != "uniform" || plan.Matching == 0 || plan.Method == "" {
		t.Errorf("plan = %+v", plan)
	}
	// Errors.
	resp2, _ := http.Get(ts.URL + "/explain")
	resp2.Body.Close()
	if resp2.StatusCode != 400 {
		t.Errorf("missing q status = %d", resp2.StatusCode)
	}
	resp3, _ := http.Get(ts.URL + "/explain?q=SHOW%20DATASETS")
	resp3.Body.Close()
	if resp3.StatusCode != 400 {
		t.Errorf("non-estimate explain status = %d", resp3.StatusCode)
	}
}

// TestClientDisconnectCancelsQuery drops the connection mid-stream and
// verifies the server keeps working (the query's context is cancelled).
func TestClientDisconnectCancelsQuery(t *testing.T) {
	ts := newTestServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	body := `{"statement": "ESTIMATE AVG(value) FROM uniform WHERE REGION(0,0,100,100)"}`
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/query", strings.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one line then drop the connection.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no first snapshot")
	}
	cancel()
	resp.Body.Close()

	// The server must still answer new queries promptly.
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp2, err := http.Post(ts.URL+"/query", "application/json",
			strings.NewReader(`{"statement": "COUNT FROM uniform"}`))
		if err != nil {
			t.Error(err)
			return
		}
		io.Copy(io.Discard, resp2.Body)
		resp2.Body.Close()
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("server wedged after client disconnect")
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d", resp.StatusCode)
	}
	var body struct {
		Status   string `json:"status"`
		Datasets int    `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" || body.Datasets != 2 {
		t.Errorf("healthz = %+v, want ok with 2 datasets", body)
	}
}

func TestShardsEndpoint(t *testing.T) {
	eng := engine.New(engine.Config{Seed: 3})
	ds := gen.Uniform(5000, 5, geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100})
	if _, err := eng.Register(ds, engine.IndexOptions{Shards: 4}); err != nil {
		t.Fatal(err)
	}
	plain, _ := gen.Tweets(gen.TweetsConfig{N: 1000, Users: 20, Seed: 5})
	if _, err := eng.Register(plain, engine.IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng))
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/shards")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /shards = %d", resp.StatusCode)
	}
	var infos []ShardInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	// Only the clustered dataset is listed.
	if len(infos) != 1 || infos[0].Dataset != ds.Name() {
		t.Fatalf("shards = %+v, want one entry for %q", infos, ds.Name())
	}
	info := infos[0]
	if info.Remote || info.ShardsDown != 0 || len(info.Shards) != 4 {
		t.Errorf("shard info = %+v, want 4 healthy simulated shards", info)
	}
	for i, st := range info.Shards {
		if st.Shard != i || st.Addr != "loopback" || st.Down {
			t.Errorf("shard %d status = %+v", i, st)
		}
	}
}
