package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"storm/internal/engine"
	"storm/internal/gen"
	"storm/internal/geo"
)

// newIOTestServer is newTestServer with I/O simulation enabled, so NDJSON
// snapshots carry per-query I/O attribution.
func newIOTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	eng := engine.New(engine.Config{Seed: 3, BufferPoolPages: 64})
	ds := gen.Uniform(20000, 5, geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100})
	if _, err := eng.Register(ds, engine.IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng))
	t.Cleanup(ts.Close)
	return ts
}

// TestMetricsEndpointServesExpvarJSON pins the /metrics wire format: one
// flat JSON object mapping metric names to values, with the engine and
// server families present after a query has run.
func TestMetricsEndpointServesExpvarJSON(t *testing.T) {
	ts := newIOTestServer(t)
	body := `{"statement": "ESTIMATE AVG(value) FROM uniform WHERE REGION(20,20,60,60) SAMPLES 500"}`
	if resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body)); err != nil {
		t.Fatal(err)
	} else {
		bufio.NewScanner(resp.Body).Scan() // touch the stream, then drain
		for sc := bufio.NewScanner(resp.Body); sc.Scan(); {
		}
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("/metrics does not parse as a flat JSON object: %v", err)
	}
	for _, name := range []string{
		"storm.engine.queries.started",
		"storm.engine.samples.drawn",
		"storm.engine.batch.size",
		"storm.server.queries",
		"storm.server.snapshots",
		"storm.dataset.uniform.records",
		"storm.iosim.pool.hits",
	} {
		if _, ok := vars[name]; !ok {
			t.Errorf("missing %q in /metrics output", name)
		}
	}
	var started uint64
	if err := json.Unmarshal(vars["storm.engine.queries.started"], &started); err != nil || started == 0 {
		t.Errorf("queries.started = %s (%v), want > 0", vars["storm.engine.queries.started"], err)
	}
	var sq uint64
	if err := json.Unmarshal(vars["storm.server.queries"], &sq); err != nil || sq != 1 {
		t.Errorf("server.queries = %s (%v), want 1", vars["storm.server.queries"], err)
	}
}

// TestMetricsEndpointNoMetrics pins the opt-out behaviour: a NoMetrics
// engine serves "{}" from /metrics instead of erroring.
func TestMetricsEndpointNoMetrics(t *testing.T) {
	eng := engine.New(engine.Config{Seed: 3, NoMetrics: true})
	ts := httptest.NewServer(New(eng))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("NoMetrics /metrics must still parse as JSON: %v", err)
	}
	if len(vars) != 0 {
		t.Errorf("NoMetrics /metrics = %v, want empty object", vars)
	}
}

// TestSnapshotReportsRawAndAdjustedIO pins the attribution-disagreement
// fix: each NDJSON snapshot reports the raw batched-charging I/O view
// (io_reads/io_hits/io_logical) alongside the coalescing-free adjusted
// hits, with io_adj_hits = io_hits - io_coalesced.
func TestSnapshotReportsRawAndAdjustedIO(t *testing.T) {
	ts := newIOTestServer(t)
	body := `{"statement": "ESTIMATE AVG(value) FROM uniform WHERE REGION(20,20,60,60) SAMPLES 2000"}`
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var last SnapshotJSON
	for sc := bufio.NewScanner(resp.Body); sc.Scan(); {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
	}
	if !last.Done {
		t.Fatalf("no final snapshot: %+v", last)
	}
	if last.IOLogical == 0 {
		t.Fatal("io_logical missing from snapshot (I/O simulation is on)")
	}
	if last.IOLogical != last.IOReads+last.IOHits {
		t.Errorf("io_logical %d != io_reads %d + io_hits %d", last.IOLogical, last.IOReads, last.IOHits)
	}
	if last.IOCoalesced == 0 {
		t.Error("io_coalesced = 0: the batched path should coalesce buffered draws")
	}
	if last.IOAdjHits != last.IOHits-last.IOCoalesced {
		t.Errorf("io_adj_hits %d != io_hits %d - io_coalesced %d", last.IOAdjHits, last.IOHits, last.IOCoalesced)
	}
}
