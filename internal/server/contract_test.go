package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"storm/internal/engine"
	"storm/internal/gen"
	"storm/internal/geo"
)

// TestContractQueryOneShot: a statement with the ERROR ... AT CONFIDENCE
// form answers once with a JSON contract verdict instead of an NDJSON
// snapshot stream.
func TestContractQueryOneShot(t *testing.T) {
	ts := newTestServer(t)
	body := `{"statement": "SELECT AVG(value) FROM uniform WHERE REGION(20,20,60,60) ERROR 10% AT CONFIDENCE 95% WITHIN 5s"}`
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q, want one-shot JSON (not a stream)", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one JSON document, not NDJSON.
	if n := strings.Count(strings.TrimSpace(string(raw)), "\n"); n != 0 {
		t.Fatalf("contract answer has %d extra lines: %s", n, raw)
	}
	var out ContractAnswerJSON
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Status != "met" {
		t.Errorf("status = %q (achieved %v), want met", out.Status, out.AchievedError)
	}
	if !out.Done {
		t.Errorf("contract answer not final: %+v", out)
	}
	if out.TargetError != 0.10 || out.TargetConfidence != 0.95 || out.DeadlineMS != 5000 {
		t.Errorf("echoed targets = %v/%v/%v", out.TargetError, out.TargetConfidence, out.DeadlineMS)
	}
	if !out.Exact && (out.AchievedError <= 0 || out.AchievedError > 0.10+1e-9) {
		t.Errorf("achieved_error = %v under a met 10%% contract", out.AchievedError)
	}
	// A met 10% contract stops as soon as its CI is inside ±10%, so the
	// point estimate can sit a full CI away from the truth (~100).
	if out.Value < 80 || out.Value > 120 {
		t.Errorf("value = %v, want within the 10%% contract's reach of 100", out.Value)
	}
	if out.QoSFactor != 0 {
		t.Errorf("unloaded server reported qos_factor = %v", out.QoSFactor)
	}
}

// TestContractQueryQoSDegradation: contract queries admitted past the
// stream cap are never shed with 429 — the contract is scaled by the
// overload factor, the answer reports the effective targets, and a met-
// under-relaxation answer is re-graded against the client's original
// contract.
func TestContractQueryQoSDegradation(t *testing.T) {
	eng := engine.New(engine.Config{Seed: 3})
	ds := gen.Uniform(20000, 5, geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100})
	if _, err := eng.Register(ds, engine.IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	srv := New(eng, WithMaxStreams(1))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// Pin the single slot (same-package test, as in the shedding suite):
	// the contract query below arrives over the cap.
	if !srv.acquireStream() {
		t.Fatal("first acquire should succeed")
	}
	defer srv.releaseStream()

	body := `{"statement": "SELECT AVG(value) FROM uniform WHERE REGION(20,20,60,60) ERROR 10% AT CONFIDENCE 95% WITHIN 5s"}`
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("contract query over the cap: status = %d (want admission, never 429): %s", resp.StatusCode, raw)
	}
	var out ContractAnswerJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.QoSFactor != 2 {
		t.Errorf("qos_factor = %v, want 2 (2 active over a cap of 1)", out.QoSFactor)
	}
	if out.EffectiveError != 0.20 {
		t.Errorf("effective_error = %v, want the scaled 0.20", out.EffectiveError)
	}
	if out.EffectiveDeadlineMS != 2500 {
		t.Errorf("effective_deadline_ms = %v, want the scaled 2500", out.EffectiveDeadlineMS)
	}
	// The verdict is graded against the ORIGINAL 10% target: met only if
	// the achieved error actually reached it, degraded otherwise.
	switch out.Status {
	case "met":
		if !out.Exact && out.AchievedError > out.TargetError+1e-9 {
			t.Errorf("met verdict with achieved %v > requested %v", out.AchievedError, out.TargetError)
		}
	case "degraded":
		if out.AchievedError != 0 && out.AchievedError <= out.TargetError {
			t.Errorf("degraded verdict with achieved %v ≤ requested %v", out.AchievedError, out.TargetError)
		}
	default:
		t.Errorf("status = %q under QoS admission", out.Status)
	}

	// The admission and degradation are visible on /metrics.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	var metrics map[string]any
	if err := json.NewDecoder(mr.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if v, _ := metrics["storm.server.contracts"].(float64); v != 1 {
		t.Errorf("storm.server.contracts = %v, want 1", metrics["storm.server.contracts"])
	}
	if v, _ := metrics["storm.server.contracts.qos_degraded"].(float64); v != 1 {
		t.Errorf("storm.server.contracts.qos_degraded = %v, want 1", metrics["storm.server.contracts.qos_degraded"])
	}
	if v, _ := metrics["storm.server.streams.shed"].(float64); v != 0 {
		t.Errorf("contract query was shed: storm.server.streams.shed = %v", metrics["storm.server.streams.shed"])
	}
}

// TestContractQueryErrors: malformed contracts surface as 400s from the
// one-shot path, unknown datasets as 404.
func TestContractQueryErrors(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		name, stmt string
		want       int
	}{
		{"unknown-dataset", "SELECT AVG(value) FROM nope ERROR 2% AT CONFIDENCE 95%", 404},
		{"quantile-contract", "SELECT P90(value) FROM uniform ERROR 2% AT CONFIDENCE 95%", 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body := `{"statement": "` + tc.stmt + `"}`
			resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			if resp.StatusCode != tc.want {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
}
