package server

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"storm/internal/distr"
	"storm/internal/engine"
	"storm/internal/gen"
	"storm/internal/geo"
)

// newFaultyServer serves a sharded dataset whose fault plan crashes 2 of 8
// shards on their second fetch.
func newFaultyServer(t *testing.T) (*httptest.Server, *engine.Engine) {
	t.Helper()
	eng := engine.New(engine.Config{Seed: 3})
	ds := gen.Uniform(12000, 5, geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100})
	plan := &distr.FaultPlan{Shards: map[int]distr.ShardFaultPlan{
		2: {Crash: true, CrashAfterFetches: 1},
		5: {Crash: true, CrashAfterFetches: 1},
	}}
	if _, err := eng.Register(ds, engine.IndexOptions{Shards: 8, Faults: plan}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng))
	t.Cleanup(ts.Close)
	return ts, eng
}

// TestStreamReportsDegradation: an NDJSON stream over a cluster that loses
// shards mid-query completes and its final snapshot carries degraded +
// shards_lost, with the shrunken population.
func TestStreamReportsDegradation(t *testing.T) {
	ts, eng := newFaultyServer(t)
	body := `{"statement": "ESTIMATE AVG(value) FROM uniform WHERE REGION(20,20,60,60)"}`
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var last SnapshotJSON
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
	}
	if !last.Done || last.Sampler != "distributed-rs-tree" {
		t.Fatalf("final snapshot = %+v", last)
	}
	if !last.Degraded || last.ShardsLost != 2 {
		t.Errorf("degradation flags = (%v, %d), want (true, 2)", last.Degraded, last.ShardsLost)
	}
	if !last.Exact || last.Samples != last.Population {
		t.Errorf("degraded run should finish exact over survivors: %+v", last)
	}
	if last.Recovered {
		t.Error("permanent crashes must not report recovered")
	}
	// The lost-mass worst-case bounds ride along on the degraded snapshot.
	if last.LostMassLow == 0 && last.LostMassHigh == 0 {
		t.Fatalf("degraded snapshot missing lost-mass bounds: %+v", last)
	}
	if last.LostMassLow >= last.LostMassHigh {
		t.Errorf("degenerate lost-mass interval [%v, %v]", last.LostMassLow, last.LostMassHigh)
	}
	if last.Value < last.LostMassLow || last.Value > last.LostMassHigh {
		t.Errorf("surviving mean %v outside widened bounds [%v, %v]",
			last.Value, last.LostMassLow, last.LostMassHigh)
	}
	// The fault counters are scrapable on /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var metrics map[string]any
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if got := metrics["storm.distr.faults.crashes"]; got != float64(2) {
		t.Errorf("storm.distr.faults.crashes = %v, want 2", got)
	}
	if got := metrics["storm.engine.queries.degraded"]; got != float64(1) {
		t.Errorf("storm.engine.queries.degraded = %v, want 1", got)
	}
	_ = eng
}

// TestStreamReportsRecovery: when the crashed shard comes back on a
// recover-after schedule mid-query, the NDJSON final snapshot reports
// recovered over the full population with no degradation flags or
// lost-mass bounds, and the readmit/recovered counters are scrapable.
func TestStreamReportsRecovery(t *testing.T) {
	ds := gen.Uniform(12000, 5, geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100})
	rect := geo.NewRect(geo.Vec{20, 20, 0}, geo.Vec{60, 60, 100})

	// Probe an identically partitioned cluster for the shard with the most
	// matching records, so the crash window is always hit mid-query.
	probe, err := engine.New(engine.Config{Seed: 3}).Register(ds, engine.IndexOptions{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	target, best := 0, -1
	for i, sh := range probe.Cluster().Shards() {
		if n := sh.Index().Count(rect); n > best {
			target, best = i, n
		}
	}
	full := probe.Cluster().Count(rect)

	eng := engine.New(engine.Config{Seed: 3})
	plan := &distr.FaultPlan{Shards: map[int]distr.ShardFaultPlan{
		target: {Crash: true, CrashAfterFetches: 1, RecoverAfter: 4},
	}}
	if _, err := eng.Register(ds, engine.IndexOptions{Shards: 8, Faults: plan}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng))
	t.Cleanup(ts.Close)

	body := `{"statement": "ESTIMATE AVG(value) FROM uniform WHERE REGION(20,20,60,60)"}`
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var last SnapshotJSON
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
	}
	if !last.Done || !last.Recovered {
		t.Fatalf("final snapshot should be done and recovered: %+v", last)
	}
	if last.Degraded || last.ShardsLost != 0 {
		t.Errorf("recovered snapshot still degraded: %+v", last)
	}
	if last.LostMassLow != 0 || last.LostMassHigh != 0 {
		t.Errorf("recovered snapshot should omit lost-mass bounds: %+v", last)
	}
	if !last.Exact || last.Population != full || last.Samples != full {
		t.Errorf("recovered run should exhaust the full population %d: %+v", full, last)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var metrics map[string]any
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if got := metrics["storm.engine.queries.recovered"]; got != float64(1) {
		t.Errorf("storm.engine.queries.recovered = %v, want 1", got)
	}
	if got := metrics["storm.distr.faults.readmits"]; got != float64(1) {
		t.Errorf("storm.distr.faults.readmits = %v, want 1", got)
	}
	_ = best
}

// TestStreamReportsFailover: at Replicas=2, killing the serving copy of
// the hottest shard mid-query fails the stream over to the survivor. The
// NDJSON final snapshot reports failed_over over the FULL population —
// exact, not degraded, no lost-mass bounds — and the failover counters
// are scrapable. /shards reports per-replica liveness (the dead copy
// down, the shard itself up), and polling it advances the dead copy's
// recovery clock until it rejoins.
func TestStreamReportsFailover(t *testing.T) {
	ds := gen.Uniform(12000, 5, geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100})
	rect := geo.NewRect(geo.Vec{20, 20, 0}, geo.Vec{60, 60, 100})

	// Probe an identically partitioned cluster for the shard with the most
	// matching records, so the crash window is always hit mid-query.
	probe, err := engine.New(engine.Config{Seed: 3}).Register(ds, engine.IndexOptions{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	target, best := 0, -1
	for i, sh := range probe.Cluster().Shards() {
		if n := sh.Index().Count(rect); n > best {
			target, best = i, n
		}
	}
	full := probe.Cluster().Count(rect)

	eng := engine.New(engine.Config{Seed: 3})
	plan := &distr.FaultPlan{Replicas: map[distr.ReplicaTarget]distr.ShardFaultPlan{
		{Shard: target, Replica: 0}: {Crash: true, CrashAfterFetches: 1, RecoverAfter: 4},
	}}
	if _, err := eng.Register(ds, engine.IndexOptions{Shards: 8, Replicas: 2, Faults: plan}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng))
	t.Cleanup(ts.Close)

	body := `{"statement": "ESTIMATE AVG(value) FROM uniform WHERE REGION(20,20,60,60)"}`
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var last SnapshotJSON
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
	}
	if !last.Done || !last.FailedOver {
		t.Fatalf("final snapshot should be done and failed over: %+v", last)
	}
	if last.Degraded || last.ShardsLost != 0 || last.Recovered {
		t.Errorf("failover must not surface as degradation or recovery: %+v", last)
	}
	if last.LostMassLow != 0 || last.LostMassHigh != 0 {
		t.Errorf("failed-over snapshot should omit lost-mass bounds: %+v", last)
	}
	if !last.Exact || last.Population != full || last.Samples != full {
		t.Errorf("failed-over run should exhaust the full population %d: %+v", full, last)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var metrics map[string]any
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if got := metrics["storm.engine.queries.failed_over"]; got != float64(1) {
		t.Errorf("storm.engine.queries.failed_over = %v, want 1", got)
	}
	if got, _ := metrics["storm.distr.replicas.failovers"].(float64); got < 1 {
		t.Errorf("storm.distr.replicas.failovers = %v, want >= 1", metrics["storm.distr.replicas.failovers"])
	}
	if got := metrics["storm.engine.queries.degraded"]; got == float64(1) {
		t.Error("failover must not count as a degraded query")
	}

	// /shards: per-replica liveness rides on each shard entry, the shard
	// itself stays up (a copy survives), and each poll is a coordinator
	// observation — within RecoverAfter polls the dead copy rejoins.
	// (The query itself may already have advanced the clock; the poll
	// loop below tolerates finding the replica already back up.)
	getInfos := func() []ShardInfo {
		r, err := http.Get(ts.URL + "/shards")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var infos []ShardInfo
		if err := json.NewDecoder(r.Body).Decode(&infos); err != nil {
			t.Fatal(err)
		}
		return infos
	}
	infos := getInfos()
	if len(infos) != 1 || len(infos[0].Shards) != 8 {
		t.Fatalf("/shards = %+v, want the one clustered dataset with 8 shards", infos)
	}
	if infos[0].ShardsDown != 0 {
		t.Errorf("shards_down = %d, want 0 (every shard kept a live copy)", infos[0].ShardsDown)
	}
	for _, st := range infos[0].Shards {
		if len(st.Replicas) != 2 {
			t.Fatalf("shard %d reports %d replicas, want 2: %+v", st.Shard, len(st.Replicas), st)
		}
		if st.Down {
			t.Errorf("shard %d marked down with a live copy: %+v", st.Shard, st)
		}
	}
	revived := false
	for i := 0; i < 10 && !revived; i++ {
		revived = true
		for _, st := range getInfos()[0].Shards {
			for _, rep := range st.Replicas {
				if rep.Down {
					revived = false
				}
			}
		}
	}
	if !revived {
		t.Error("dead replica never rejoined: /shards polls must advance the recovery clock")
	}
	_ = best
}

// TestLoadSheddingCapsStreams: with WithMaxStreams(1) and the single slot
// held, further NDJSON streams are shed with 429 + Retry-After and counted
// under storm.server.streams.shed; releasing the slot re-admits streams
// and non-streaming endpoints are never shed. The slot is pinned directly
// (same-package test) so the boundary is exercised deterministically — a
// real held stream's lifetime depends on query timing.
func TestLoadSheddingCapsStreams(t *testing.T) {
	eng := engine.New(engine.Config{Seed: 3})
	ds := gen.Uniform(20000, 5, geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100})
	if _, err := eng.Register(ds, engine.IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	srv := New(eng, WithMaxStreams(1))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	if !srv.acquireStream() {
		t.Fatal("first acquire should succeed")
	}

	// While the slot is held, concurrent streams are shed.
	quick := `{"statement": "ESTIMATE AVG(value) FROM uniform WHERE REGION(20,20,60,60) SAMPLES 100"}`
	const contenders = 4
	var wg sync.WaitGroup
	codes := make([]int, contenders)
	retryAfter := make([]string, contenders)
	for i := 0; i < contenders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(quick))
			if err != nil {
				return
			}
			defer r.Body.Close()
			io.Copy(io.Discard, r.Body)
			codes[i] = r.StatusCode
			retryAfter[i] = r.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusTooManyRequests {
			t.Errorf("contender %d status = %d, want 429", i, code)
		}
		if retryAfter[i] == "" {
			t.Errorf("contender %d missing Retry-After", i)
		}
	}

	// Non-streaming endpoints are never shed.
	if r, err := http.Get(ts.URL + "/datasets"); err != nil || r.StatusCode != 200 {
		t.Errorf("GET /datasets under load: %v, %v", r, err)
	} else {
		r.Body.Close()
	}

	// Release the slot: the next stream is admitted.
	srv.releaseStream()
	r, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(quick))
	if err != nil {
		t.Fatal(err)
	}
	code := r.StatusCode
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if code != 200 {
		t.Errorf("post-release stream status = %d, want 200", code)
	}

	// Sheds are visible on /metrics.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	var metrics map[string]any
	if err := json.NewDecoder(mr.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if shed, _ := metrics["storm.server.streams.shed"].(float64); shed != contenders {
		t.Errorf("storm.server.streams.shed = %v, want %d", metrics["storm.server.streams.shed"], contenders)
	}
	if active, _ := metrics["storm.server.streams.active"].(float64); active != 0 {
		t.Errorf("storm.server.streams.active = %v after all streams closed", active)
	}
}

// TestAcquireStreamCAS: under contention, exactly maxStreams acquires
// succeed — the check-then-acquire is atomic.
func TestAcquireStreamCAS(t *testing.T) {
	eng := engine.New(engine.Config{Seed: 1, NoMetrics: true})
	srv := New(eng, WithMaxStreams(10))
	var wg sync.WaitGroup
	var granted atomic.Int64
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if srv.acquireStream() {
				granted.Add(1)
			}
		}()
	}
	wg.Wait()
	if granted.Load() != 10 {
		t.Errorf("granted %d slots, want 10", granted.Load())
	}
	// Unlimited servers never shed.
	open := New(eng)
	for i := 0; i < 1000; i++ {
		if !open.acquireStream() {
			t.Fatal("uncapped server shed a stream")
		}
	}
}
