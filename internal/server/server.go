// Package server exposes STORM's query interface over HTTP — the
// reproduction's equivalent of the paper's web front end (www.estorm.org).
//
// Endpoints:
//
//	GET  /datasets                    list registered datasets
//	GET  /datasets/{name}             one dataset's schema and size
//	POST /query                       execute a STORM statement; online
//	                                  snapshots stream back as NDJSON
//	POST /datasets/{name}/records     insert records (the updates demo)
//	POST /ingest/{name}               stream NDJSON records through the
//	                                  buffered ingest path (429 + Retry-After
//	                                  under backpressure)
//	GET  /explain?q=<statement>       the optimizer plan for an estimate
//	GET  /metrics                     engine + server metrics as one flat
//	                                  expvar-format JSON object
//	GET  /healthz                     liveness probe
//	GET  /shards                      per-dataset shard placement and
//	                                  liveness (clustered datasets only)
//
// Online queries honor client disconnection: dropping the connection
// cancels the query, the paper's interactive-exploration semantics over
// HTTP.
//
// The server is fully concurrent: net/http serves each request on its own
// goroutine and the engine's read path is shared, so any number of NDJSON
// query streams run in parallel against the same dataset, serialized only
// against inserts and deletes (see package engine's concurrency model).
// Each stream's snapshots carry that query's own simulated I/O counters.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"storm/internal/data"
	"storm/internal/distr"
	"storm/internal/engine"
	"storm/internal/geo"
	"storm/internal/ingest"
	"storm/internal/obs"
	"storm/internal/query"
)

// Server is an http.Handler serving a STORM engine.
type Server struct {
	eng *engine.Engine
	mux *http.ServeMux
	met serverMetrics
	// maxStreams caps concurrent NDJSON estimate streams (load shedding);
	// 0 means unlimited. activeStreams is the authoritative counter — the
	// storm.server.streams.active gauge mirrors it but cannot provide the
	// atomic check-then-acquire the cap needs.
	maxStreams    int
	activeStreams atomic.Int64
	// ingCfg templates per-dataset ingestors (WithIngestConfig); ing holds
	// one lazily created Ingestor per dataset streamed to via POST /ingest.
	ingCfg ingest.Config
	ingMu  sync.Mutex
	ing    map[string]*ingest.Ingestor
}

// Option configures a Server.
type Option func(*Server)

// WithMaxStreams caps the number of concurrently open NDJSON estimate
// streams. Requests beyond the cap are shed with 429 Too Many Requests and
// a Retry-After header rather than degrading every in-flight query's
// latency; sheds are counted under storm.server.streams.shed. n <= 0 means
// unlimited.
func WithMaxStreams(n int) Option {
	return func(s *Server) {
		if n < 0 {
			n = 0
		}
		s.maxStreams = n
	}
}

// WithIngestConfig templates the per-dataset ingest buffers behind
// POST /ingest/{name}: shard count, flush thresholds and the MaxPending
// backpressure bound. Name and Obs are set per dataset when an ingestor
// is created; the other fields are taken as given (zero values get the
// package ingest defaults).
func WithIngestConfig(cfg ingest.Config) Option {
	return func(s *Server) { s.ingCfg = cfg }
}

// serverMetrics holds the server's resolved metric handles; all-nil (every
// write a no-op) when the engine's metrics are disabled.
type serverMetrics struct {
	// queries counts POST /query statements accepted for execution.
	queries *obs.Counter
	// streams is the number of NDJSON estimate streams currently open.
	streams *obs.Gauge
	// snapshots counts NDJSON snapshot lines written across all streams.
	snapshots *obs.Counter
	// inserts counts records inserted through the HTTP API.
	inserts *obs.Counter
	// shed counts NDJSON streams rejected by the WithMaxStreams cap.
	shed *obs.Counter
	// contracts counts one-shot contract queries served; qosDegraded
	// counts those admitted over the stream cap with a proportionally
	// relaxed contract instead of a 429 (per-query QoS); infeasible counts
	// contracts refused up front with 422 (provably unmeetable).
	contracts   *obs.Counter
	qosDegraded *obs.Counter
	infeasible  *obs.Counter
}

// New returns a server over the engine. The engine's metrics registry
// (when enabled) is served at /metrics and extended with the server's own
// per-connection counters.
func New(eng *engine.Engine, opts ...Option) *Server {
	reg := eng.Obs()
	s := &Server{eng: eng, mux: http.NewServeMux(), met: serverMetrics{
		queries:     reg.Counter("storm.server.queries"),
		streams:     reg.Gauge("storm.server.streams.active"),
		snapshots:   reg.Counter("storm.server.snapshots"),
		inserts:     reg.Counter("storm.server.inserts"),
		shed:        reg.Counter("storm.server.streams.shed"),
		contracts:   reg.Counter("storm.server.contracts"),
		qosDegraded: reg.Counter("storm.server.contracts.qos_degraded"),
		infeasible:  reg.Counter("storm.server.contracts.infeasible"),
	}}
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc("GET /datasets", s.handleDatasets)
	s.mux.HandleFunc("GET /datasets/{name}", s.handleDataset)
	s.mux.HandleFunc("POST /datasets/{name}/records", s.handleInsert)
	s.mux.HandleFunc("POST /ingest/{name}", s.handleIngest)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("GET /explain", s.handleExplain)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /shards", s.handleShards)
	return s
}

// handleHealthz is the liveness probe: a serving process answers 200 with
// its dataset count. Load balancers and the cluster smoke tests poll it.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":   "ok",
		"datasets": len(s.eng.Datasets()),
	})
}

// ShardInfo describes one dataset's shard cluster as the coordinator sees
// it: where each shard lives and whether its host answers.
type ShardInfo struct {
	Dataset string `json:"dataset"`
	// Remote is true for a TCP cluster (shards are separate processes),
	// false for a simulated in-process cluster.
	Remote bool                `json:"remote"`
	Shards []distr.ShardStatus `json:"shards"`
	// ShardsDown counts shards whose host is currently unreachable (or
	// crashed by fault injection).
	ShardsDown int `json:"shards_down"`
}

// handleShards reports shard placement and liveness for every dataset
// registered with a cluster. The liveness check is a regular coordinator
// probe, so polling this endpoint also advances injected recovery clocks.
func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	names := s.eng.Datasets()
	sort.Strings(names)
	out := []ShardInfo{}
	for _, name := range names {
		h, err := s.eng.Dataset(name)
		if err != nil {
			continue
		}
		cl := h.Cluster()
		if cl == nil {
			continue
		}
		info := ShardInfo{Dataset: name, Remote: cl.Remote(), Shards: cl.ShardStatus()}
		for _, st := range info.Shards {
			if st.Down {
				info.ShardsDown++
			}
		}
		out = append(out, info)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// handleMetrics serves the engine's registry as one flat expvar-format
// JSON object. With metrics disabled it serves "{}" rather than erroring,
// so scrapers never need to special-case a NoMetrics deployment.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.eng.Obs().WriteJSON(w)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// DatasetInfo describes one registered dataset.
type DatasetInfo struct {
	Name    string   `json:"name"`
	Records int      `json:"records"`
	Numeric []string `json:"numeric_columns"`
	String  []string `json:"string_columns"`
}

func (s *Server) datasetInfo(name string) (DatasetInfo, error) {
	h, err := s.eng.Dataset(name)
	if err != nil {
		return DatasetInfo{}, err
	}
	num := h.Data().NumericColumns()
	str := h.Data().StringColumns()
	sort.Strings(num)
	sort.Strings(str)
	return DatasetInfo{Name: name, Records: h.Len(), Numeric: num, String: str}, nil
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	names := s.eng.Datasets()
	sort.Strings(names)
	out := make([]DatasetInfo, 0, len(names))
	for _, n := range names {
		info, err := s.datasetInfo(n)
		if err != nil {
			continue
		}
		out = append(out, info)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handleDataset(w http.ResponseWriter, r *http.Request) {
	info, err := s.datasetInfo(r.PathValue("name"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(info)
}

// InsertRequest is the body of POST /datasets/{name}/records.
type InsertRequest struct {
	Records []InsertRecord `json:"records"`
}

// InsertRecord is one record to insert.
type InsertRecord struct {
	Lon  float64            `json:"lon"`
	Lat  float64            `json:"lat"`
	Time float64            `json:"time"`
	Num  map[string]float64 `json:"num,omitempty"`
	Str  map[string]string  `json:"str,omitempty"`
}

// row converts the wire record to an engine row.
func (rec InsertRecord) row() data.Row {
	return data.Row{Pos: geo.Vec{rec.Lon, rec.Lat, rec.Time}, Num: rec.Num, Str: rec.Str}
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	h, err := s.eng.Dataset(r.PathValue("name"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	var req InsertRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if len(req.Records) == 0 {
		httpError(w, http.StatusBadRequest, "no records")
		return
	}
	rows := make([]data.Row, len(req.Records))
	for i, rec := range req.Records {
		rows[i] = rec.row()
	}
	// One InsertBatch per request: the dataset write lock is taken once for
	// the whole body instead of once per record.
	ids := h.InsertBatch(rows)
	s.met.inserts.Add(uint64(len(ids)))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"inserted": len(ids), "first_id": ids[0]})
}

// ingestor returns (creating on first use) the dataset's buffered ingestor,
// draining into the dataset handle's InsertBatch.
func (s *Server) ingestor(name string, h *engine.Handle) *ingest.Ingestor {
	s.ingMu.Lock()
	defer s.ingMu.Unlock()
	if in, ok := s.ing[name]; ok {
		return in
	}
	if s.ing == nil {
		s.ing = make(map[string]*ingest.Ingestor)
	}
	cfg := s.ingCfg
	cfg.Name = name
	cfg.Obs = s.eng.Obs()
	in := ingest.New(h, cfg)
	s.ing[name] = in
	return in
}

// Close flushes and stops every ingestor POST /ingest created. The HTTP
// mux itself is stateless; only the ingest buffers hold background work.
func (s *Server) Close() error {
	s.ingMu.Lock()
	defer s.ingMu.Unlock()
	for _, in := range s.ing {
		in.Close()
	}
	s.ing = nil
	return nil
}

// IngestResponse is the body of a POST /ingest/{name} response. Accepted
// counts records buffered by THIS request; on a 429 it tells the client
// how far through its stream the backpressure hit.
type IngestResponse struct {
	Accepted int `json:"accepted"`
	// Pending is the ingestor's drain backlog after this request.
	Pending int `json:"pending"`
	// Watermark is the dataset's event-time watermark (maximum Pos[2] seen),
	// the anchor `LAST <dur>` windows trail behind.
	Watermark float64 `json:"watermark,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// handleIngest streams records into the buffered ingest path: the body is
// NDJSON (one InsertRecord per line), appended record-by-record to the
// dataset's ingestor, which drains to the indexes in the background as
// batched bulk inserts. Producers therefore never take the dataset write
// lock. When the drain backlog hits the configured MaxPending the request
// stops with 429 + Retry-After and reports how many records it accepted —
// the client resumes from there after backing off.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	h, err := s.eng.Dataset(name)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	in := s.ingestor(name, h)
	dec := json.NewDecoder(r.Body)
	accepted := 0
	respond := func(status int, errMsg string) {
		s.met.inserts.Add(uint64(accepted)) // buffered records count even on 429/400
		out := IngestResponse{Accepted: accepted, Pending: in.Pending(), Error: errMsg}
		if wm, ok := in.Watermark(); ok {
			out.Watermark = wm
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(out)
	}
	// Decoded records accumulate into chunks handed to AppendBatch: one
	// shard-lock acquisition per chunk instead of per record. AppendBatch
	// is all-or-nothing, so `accepted` stays exact on a mid-stream 429.
	const chunk = 512
	batch := make([]data.Row, 0, chunk)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := in.AppendBatch(batch); err != nil {
			return err
		}
		accepted += len(batch)
		batch = batch[:0]
		return nil
	}
	for {
		var rec InsertRecord
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			if ferr := flush(); ferr != nil { // records before the bad line still count
				w.Header().Set("Retry-After", "1")
				respond(http.StatusTooManyRequests, ferr.Error())
				return
			}
			respond(http.StatusBadRequest, fmt.Sprintf("decoding record %d: %v", accepted, err))
			return
		}
		batch = append(batch, rec.row())
		if len(batch) == chunk {
			if err := flush(); err != nil {
				// Backpressure (or a closing server): surface 429 so the
				// producer backs off; everything already accepted is safe.
				w.Header().Set("Retry-After", "1")
				respond(http.StatusTooManyRequests, err.Error())
				return
			}
		}
	}
	if err := flush(); err != nil {
		w.Header().Set("Retry-After", "1")
		respond(http.StatusTooManyRequests, err.Error())
		return
	}
	respond(http.StatusOK, "")
}

// QueryRequest is the body of POST /query.
type QueryRequest struct {
	// Statement is a STORM query-language statement.
	Statement string `json:"statement"`
}

// SnapshotJSON is one streamed snapshot of an online estimate.
type SnapshotJSON struct {
	Kind       string  `json:"kind"`
	Value      float64 `json:"value"`
	HalfWidth  float64 `json:"half_width"`
	Confidence float64 `json:"confidence"`
	Samples    int     `json:"samples"`
	Population int     `json:"population"`
	Exact      bool    `json:"exact"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	Sampler    string  `json:"sampler"`
	// IOReads/IOHits are this query's simulated page misses and buffer
	// hits (per-query attribution; zero when I/O simulation is off).
	// These are the RAW batched-charging numbers: IOHits includes hits
	// whose verdict was manufactured by run-coalescing on the batched
	// path, so it can exceed what a serial interleaving of the same
	// queries would have charged (see iosim.Stats.Coalesced).
	IOReads uint64 `json:"io_reads,omitempty"`
	IOHits  uint64 `json:"io_hits,omitempty"`
	// IOLogical is total logical accesses (hits + misses) and
	// IOCoalesced is how many of the hits were coalescing-granted;
	// IOAdjHits = IOHits - IOCoalesced is the batch-adjusted hit count,
	// whose verdicts all came from genuine buffer-pool lookups. Raw and
	// adjusted views are both reported so operators can bound how much
	// hit rate batching manufactured.
	IOLogical   uint64 `json:"io_logical,omitempty"`
	IOCoalesced uint64 `json:"io_coalesced,omitempty"`
	IOAdjHits   uint64 `json:"io_adj_hits,omitempty"`
	// Degraded marks a distributed query that lost ShardsLost shards
	// mid-stream; Population has been shrunk to the surviving matching
	// count, so the CI is honest over what could still be sampled (see
	// DESIGN.md §4.3 and the README fault-tolerance handbook).
	Degraded   bool `json:"degraded,omitempty"`
	ShardsLost int  `json:"shards_lost,omitempty"`
	// Recovered marks a query that lost shards mid-stream and re-admitted
	// all of them after they came back: Population is restored to the
	// full matching count. Mutually exclusive with Degraded.
	Recovered bool `json:"recovered,omitempty"`
	// FailedOver marks a query that moved at least one shard stream onto
	// a surviving replica mid-query (Replicas >= 2). The population is
	// intact — no lost mass, full-strength CI (see DESIGN.md §4.8).
	FailedOver bool `json:"failed_over,omitempty"`
	// RejectRatio is the fraction of the sampler's draws its rejection
	// steps discarded (predicate or out-of-range rejections); zero for
	// exact answers and clean pushdown streams.
	RejectRatio float64 `json:"reject_ratio,omitempty"`
	// LostMassLow/LostMassHigh, present only on degraded AVG/SUM
	// snapshots, bound the aggregate over the full pre-crash population:
	// the surviving CI widened by the lost shards' min/max attribute
	// summaries (see DESIGN.md §4.3).
	LostMassLow  float64 `json:"lost_mass_low,omitempty"`
	LostMassHigh float64 `json:"lost_mass_high,omitempty"`
	// Unbounded marks a CI that is still unbounded (fewer than two
	// samples on a non-exact estimate); half_width is then omitted
	// because JSON cannot carry +Inf.
	Unbounded bool `json:"unbounded,omitempty"`
	// Windowed marks a `LAST <dur>` query; WindowLo/WindowHi are the
	// resolved event-time bounds (seconds) the estimate covered —
	// [watermark-dur, watermark] intersected with any TIME clause.
	Windowed bool    `json:"windowed,omitempty"`
	WindowLo float64 `json:"window_lo,omitempty"`
	WindowHi float64 `json:"window_hi,omitempty"`
	Done     bool    `json:"done"`
}

// handleQuery executes an estimate statement and streams NDJSON snapshots.
// Non-estimate statements (KDE, TERMS, ...) run to completion and return
// their text rendering in a single JSON object.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	q, err := query.Parse(req.Statement)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.met.queries.Inc()

	// Contract estimates answer once with their guarantee; other
	// estimates stream; everything else renders once.
	if q.Op == query.OpEstimate && !q.Explain && q.GroupBy == "" && q.Contract {
		s.contractQuery(w, r, q)
		return
	}
	if q.Op == query.OpEstimate && !q.Explain && q.GroupBy == "" {
		s.streamEstimate(w, r, q)
		return
	}
	var buf textBuffer
	if err := query.Run(r.Context(), s.eng, q, &buf); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"output": buf.String()})
}

// acquireStream reserves an NDJSON stream slot, or reports that the
// WithMaxStreams cap is reached. The CAS loop makes check-then-acquire
// atomic across concurrent requests; the storm.server.streams.active gauge
// mirrors the count for scrapers.
func (s *Server) acquireStream() bool {
	for {
		cur := s.activeStreams.Load()
		if s.maxStreams > 0 && cur >= int64(s.maxStreams) {
			return false
		}
		if s.activeStreams.CompareAndSwap(cur, cur+1) {
			s.met.streams.Add(1)
			return true
		}
	}
}

func (s *Server) releaseStream() {
	s.activeStreams.Add(-1)
	s.met.streams.Add(-1)
}

func (s *Server) streamEstimate(w http.ResponseWriter, r *http.Request, q *query.Query) {
	// Load shedding: reject beyond-cap streams up front — before the query
	// starts sampling — so in-flight queries keep their latency instead of
	// everyone degrading together.
	if !s.acquireStream() {
		s.met.shed.Inc()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests,
			"stream limit reached (%d concurrent NDJSON streams); retry shortly", s.maxStreams)
		return
	}
	defer s.releaseStream()
	h, err := s.eng.Dataset(q.Dataset)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	opts := engine.Options{
		Kind:           q.Agg,
		Attr:           q.Attr,
		QuantileP:      q.QuantileP,
		Confidence:     q.Confidence,
		TargetRelError: q.RelError,
		TimeBudget:     q.Within,
		MaxSamples:     q.Samples,
		Method:         q.Method,
		Where:          q.Where,
		Last:           q.Last,
	}
	// r.Context() is cancelled when the client disconnects, which stops
	// the query — interactive exploration over HTTP.
	ch, err := h.EstimateOnline(r.Context(), q.Range(), opts)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	encode := func(snap engine.Snapshot) bool {
		if enc.Encode(snapshotJSON(snap)) != nil {
			return false
		}
		s.met.snapshots.Inc()
		return true
	}
	for snap := range ch {
		if !encode(snap) {
			return // client gone; ctx cancellation stops the query
		}
		// Coalesce: when the evaluator's batched loop produced several
		// snapshots since the last write, encode everything already queued
		// and flush the connection once for the whole burst.
	drain:
		for {
			select {
			case more, ok := <-ch:
				if !ok {
					break drain
				}
				if !encode(more) {
					return
				}
			default:
				break drain
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// snapshotJSON converts an engine snapshot to its wire form — shared by
// the NDJSON stream and the one-shot contract answer. An unbounded CI
// (fewer than two samples on a non-exact estimate) is reported as
// unbounded=true with half_width omitted, since JSON has no +Inf.
func snapshotJSON(snap engine.Snapshot) SnapshotJSON {
	adj := snap.IO.BatchAdjusted()
	out := SnapshotJSON{
		Kind:         snap.Kind.String(),
		Value:        snap.Value,
		HalfWidth:    snap.HalfWidth,
		Confidence:   snap.Confidence,
		Samples:      snap.Samples,
		Population:   snap.Population,
		Exact:        snap.Exact,
		ElapsedMS:    float64(snap.Elapsed) / float64(time.Millisecond),
		Sampler:      snap.Method,
		IOReads:      snap.IO.Reads,
		IOHits:       snap.IO.Hits,
		IOLogical:    snap.IO.Logical,
		IOCoalesced:  snap.IO.Coalesced,
		IOAdjHits:    adj.Hits,
		Degraded:     snap.Degraded,
		ShardsLost:   snap.ShardsLost,
		Recovered:    snap.Recovered,
		FailedOver:   snap.FailedOver,
		RejectRatio:  snap.RejectRatio,
		LostMassLow:  snap.LostMassLow,
		LostMassHigh: snap.LostMassHigh,
		Windowed:     snap.Windowed,
		WindowLo:     snap.WindowLo,
		WindowHi:     snap.WindowHi,
		Done:         snap.Done,
	}
	if math.IsInf(out.HalfWidth, 0) || math.IsNaN(out.HalfWidth) {
		out.HalfWidth = 0
		out.Unbounded = true
	}
	return out
}

// ContractAnswerJSON is the one-shot response of a contract query
// (POST /query with an "ERROR ... AT CONFIDENCE ..." statement): the final
// snapshot plus the contract's verdict, targets, and what the planner
// predicted. When the server admitted the query over the stream cap, the
// qos_factor/effective_* fields report the relaxed contract it actually
// ran under (per-query QoS degradation instead of a 429).
type ContractAnswerJSON struct {
	SnapshotJSON
	// Status is the guarantee verdict: "met", "degraded" or "missed",
	// always graded against the client's requested contract.
	Status string `json:"status"`
	// TargetError/TargetConfidence/DeadlineMS echo the requested contract.
	TargetError      float64 `json:"target_error,omitempty"`
	TargetConfidence float64 `json:"target_confidence"`
	DeadlineMS       float64 `json:"deadline_ms,omitempty"`
	// AchievedError is the final relative CI half-width; omitted when the
	// estimate is unbounded (see SnapshotJSON.Unbounded).
	AchievedError float64 `json:"achieved_error,omitempty"`
	// PlannedSamples/PredictedMS/ColdPlan/Feasible summarize the
	// contract planner's prediction (see engine.ContractPlan).
	PlannedSamples int     `json:"planned_samples,omitempty"`
	PredictedMS    float64 `json:"predicted_ms,omitempty"`
	ColdPlan       bool    `json:"cold_plan,omitempty"`
	Feasible       bool    `json:"feasible"`
	// QoSFactor > 1 marks overload admission: the query ran under the
	// requested contract scaled by this factor (error target widened,
	// deadline shrunk — the effective_* fields).
	QoSFactor           float64 `json:"qos_factor,omitempty"`
	EffectiveError      float64 `json:"effective_error,omitempty"`
	EffectiveDeadlineMS float64 `json:"effective_deadline_ms,omitempty"`
}

// ContractRefusedJSON is the 422 body for a contract the planner proves
// infeasible before execution: the requested targets alongside what the
// planner predicts the deadline can actually buy (see OPERATIONS.md).
type ContractRefusedJSON struct {
	Error            string  `json:"error"`
	TargetError      float64 `json:"target_error"`
	TargetConfidence float64 `json:"target_confidence"`
	DeadlineMS       float64 `json:"deadline_ms"`
	// PredictedRelError is the relative error the planner expects the
	// deadline's BudgetSamples-sample budget to deliver; PlannedSamples is
	// what the error target would need; PredictedMS how long that would take.
	PredictedRelError float64 `json:"predicted_rel_error"`
	PredictedMS       float64 `json:"predicted_ms"`
	BudgetSamples     int     `json:"budget_samples"`
	PlannedSamples    int     `json:"planned_samples"`
}

// contractQuery executes a contract-mode estimate and answers once with
// its guarantee. Contract queries are never shed: beyond the stream cap
// the contract is scaled by the overload factor instead, so heavy
// dashboard traffic degrades per-query error bounds rather than taking
// 429s (see engine.Contract.Scale).
func (s *Server) contractQuery(w http.ResponseWriter, r *http.Request, q *query.Query) {
	if len(q.MultiAggs) > 1 {
		httpError(w, http.StatusBadRequest, "contracts apply to single-aggregate estimates")
		return
	}
	h, err := s.eng.Dataset(q.Dataset)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	s.met.contracts.Inc()
	// Contract queries occupy a stream slot for accounting but are
	// admitted past the cap: overload shows up in their guarantee, not as
	// rejections.
	cur := s.activeStreams.Add(1)
	s.met.streams.Add(1)
	defer s.releaseStream()
	factor := 1.0
	if s.maxStreams > 0 && cur > int64(s.maxStreams) {
		factor = float64(cur) / float64(s.maxStreams)
		s.met.qosDegraded.Inc()
	}
	req := engine.Contract{RelError: q.RelError, Confidence: q.Confidence, Deadline: q.Within}
	eff := req.Scale(factor)
	opts := engine.Options{
		Kind:       q.Agg,
		Attr:       q.Attr,
		QuantileP:  q.QuantileP,
		MaxSamples: q.Samples,
		Method:     q.Method,
		Where:      q.Where,
		Last:       q.Last,
	}
	// Provably infeasible contracts are refused up front with 422: the
	// planner's warm-profile prediction says the error target cannot fit
	// the deadline, so running the query would burn the whole deadline to
	// deliver a "missed" verdict anyway. Cold plans (no telemetry yet) get
	// the benefit of the doubt and run. Planning errors fall through to
	// EstimateContract, which reports them as a 400.
	if plan, perr := h.ExplainContract(q.Range(), opts, eff); perr == nil && !plan.Feasible && !plan.Cold {
		s.met.infeasible.Inc()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnprocessableEntity)
		json.NewEncoder(w).Encode(ContractRefusedJSON{
			Error:             "contract provably infeasible: predicted error within the deadline exceeds the target",
			TargetError:       req.RelError,
			TargetConfidence:  plan.Target.Confidence,
			DeadlineMS:        float64(req.Deadline) / float64(time.Millisecond),
			PredictedRelError: plan.PredictedRelError,
			PredictedMS:       plan.PredictedMS,
			BudgetSamples:     plan.Budget,
			PlannedSamples:    plan.Samples,
		})
		return
	}
	res, err := h.EstimateContract(r.Context(), q.Range(), opts, eff)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The engine graded against the effective (scaled) contract; the
	// client is owed a verdict against what it asked for.
	if factor > 1 && res.Status == engine.ContractMet && req.RelError > 0 &&
		!res.Exact && res.AchievedRelError > req.RelError {
		res.Status = engine.ContractDegraded
	}
	out := ContractAnswerJSON{
		SnapshotJSON:     snapshotJSON(res.Snapshot),
		Status:           res.Status.String(),
		TargetError:      req.RelError,
		TargetConfidence: res.Contract.Confidence,
		DeadlineMS:       float64(req.Deadline) / float64(time.Millisecond),
		PlannedSamples:   res.Plan.Samples,
		PredictedMS:      res.Plan.PredictedMS,
		ColdPlan:         res.Plan.Cold,
		Feasible:         res.Plan.Feasible,
	}
	if !out.Unbounded && !math.IsInf(res.AchievedRelError, 0) && !math.IsNaN(res.AchievedRelError) {
		out.AchievedError = res.AchievedRelError
	}
	if factor > 1 {
		out.QoSFactor = factor
		out.EffectiveError = eff.RelError
		out.EffectiveDeadlineMS = float64(eff.Deadline) / float64(time.Millisecond)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// PlanJSON is the /explain response. The where_* fields appear only for
// statements with attribute predicates: the canonical predicate, the
// exact qualifying count, the planner's selectivity estimate, and whether
// it chose pushdown over rejection.
type PlanJSON struct {
	Dataset          string  `json:"dataset"`
	N                int     `json:"n"`
	Matching         int     `json:"matching"`
	Selectivity      float64 `json:"selectivity"`
	Method           string  `json:"method"`
	CanonicalSize    int     `json:"canonical_size"`
	TreeHeight       int     `json:"tree_height"`
	Where            string  `json:"where,omitempty"`
	Qualifying       int     `json:"qualifying"`
	WhereSelectivity float64 `json:"where_selectivity"`
	Pushdown         bool    `json:"pushdown,omitempty"`
	// Windowed marks a `LAST <dur>` statement (the plan's counts are over
	// the narrowed range); WindowEmpty means the window misses the queried
	// time span entirely, so nothing can qualify.
	Windowed    bool `json:"windowed,omitempty"`
	WindowEmpty bool `json:"window_empty,omitempty"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	stmt := r.URL.Query().Get("q")
	if stmt == "" {
		httpError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	q, err := query.Parse(stmt)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if q.Op != query.OpEstimate {
		httpError(w, http.StatusBadRequest, "explain applies to estimate statements")
		return
	}
	h, err := s.eng.Dataset(q.Dataset)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	rng := q.Range()
	if q.Last > 0 {
		rng = h.WindowRange(rng, q.Last)
		if !rng.Valid() {
			// The window misses the queried time span (empty dataset, or it
			// slid past the TIME clause): nothing qualifies.
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(PlanJSON{Dataset: q.Dataset, Windowed: true, WindowEmpty: true})
			return
		}
	}
	plan, err := h.ExplainWhere(rng, q.Where, engine.PushdownAuto)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(PlanJSON{
		Dataset:          plan.Dataset,
		N:                plan.N,
		Matching:         plan.Matching,
		Selectivity:      plan.Selectivity,
		Method:           plan.Method.String(),
		CanonicalSize:    plan.CanonicalSize,
		TreeHeight:       plan.TreeHeight,
		Where:            plan.Where,
		Qualifying:       plan.Qualifying,
		WhereSelectivity: plan.WhereSelectivity,
		Pushdown:         plan.Pushdown,
		Windowed:         q.Last > 0,
	})
}

// textBuffer is a minimal io.Writer accumulating query output.
type textBuffer struct{ b []byte }

func (t *textBuffer) Write(p []byte) (int, error) {
	t.b = append(t.b, p...)
	return len(p), nil
}

func (t *textBuffer) String() string { return string(t.b) }
