package persist

import (
	"math"
	"testing"

	"storm/internal/data"
	"storm/internal/dfs"
	"storm/internal/docstore"
	"storm/internal/gen"
	"storm/internal/geo"
)

func newStore(t *testing.T) *docstore.Store {
	t.Helper()
	c, err := dfs.New(dfs.Config{Nodes: 3, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	return docstore.Open(c)
}

func TestRoundTrip(t *testing.T) {
	store := newStore(t)
	ds := data.NewDataset("rt")
	ds.AddNumericColumn("temp")
	ds.AddStringColumn("tag")
	ds.Append(data.Row{Pos: geo.Vec{1, 2, 3}, Num: map[string]float64{"temp": 5.5}, Str: map[string]string{"tag": "a"}})
	ds.Append(data.Row{Pos: geo.Vec{4, 5, 6}}) // temp missing (NaN), tag empty
	ds.Append(data.Row{Pos: geo.Vec{7, 8, 9}, Num: map[string]float64{"temp": -1}, Str: map[string]string{"tag": "b"}})

	if err := Save(store, ds); err != nil {
		t.Fatal(err)
	}
	got, err := Load(store, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("len = %d", got.Len())
	}
	for i := 0; i < 3; i++ {
		if got.Pos(data.ID(i)) != ds.Pos(data.ID(i)) {
			t.Errorf("pos %d = %v, want %v", i, got.Pos(data.ID(i)), ds.Pos(data.ID(i)))
		}
	}
	v0, _ := got.Numeric("temp", 0)
	if v0 != 5.5 {
		t.Errorf("temp[0] = %v", v0)
	}
	v1, _ := got.Numeric("temp", 1)
	if !math.IsNaN(v1) {
		t.Errorf("missing temp should load as NaN, got %v", v1)
	}
	s0, _ := got.String("tag", 0)
	s1, _ := got.String("tag", 1)
	if s0 != "a" || s1 != "" {
		t.Errorf("tags = %q, %q", s0, s1)
	}
}

func TestRoundTripGenerated(t *testing.T) {
	store := newStore(t)
	ds := gen.OSM(gen.OSMConfig{N: 3000, Seed: 1})
	if err := Save(store, ds); err != nil {
		t.Fatal(err)
	}
	got, err := Load(store, "osm")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ds.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), ds.Len())
	}
	a, _ := ds.NumericColumn("altitude")
	b, _ := got.NumericColumn("altitude")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("altitude[%d]: %v != %v", i, a[i], b[i])
		}
	}
}

func TestSaveDuplicateRejected(t *testing.T) {
	store := newStore(t)
	ds := data.NewDataset("dup")
	ds.AppendFast(geo.Vec{1, 1, 1})
	if err := Save(store, ds); err != nil {
		t.Fatal(err)
	}
	if err := Save(store, ds); err == nil {
		t.Error("duplicate save should fail")
	}
}

func TestLoadErrors(t *testing.T) {
	store := newStore(t)
	if _, err := Load(store, "missing"); err == nil {
		t.Error("loading unknown collection should fail")
	}
	// Collection without a schema record.
	store.Insert("raw", docstore.Document{"x": 1.0})
	if _, err := Load(store, "raw"); err == nil {
		t.Error("loading a non-dataset collection should fail")
	}
	// Malformed coordinates.
	store.Insert("bad", docstore.Document{schemaKey: true, "numeric": []any{}, "string": []any{}})
	store.Insert("bad", docstore.Document{"x": "oops", "y": 1.0, "t": 2.0})
	if _, err := Load(store, "bad"); err == nil {
		t.Error("malformed coordinates should fail")
	}
}

func TestEmptyDatasetRoundTrip(t *testing.T) {
	store := newStore(t)
	ds := data.NewDataset("empty")
	ds.AddNumericColumn("v")
	if err := Save(store, ds); err != nil {
		t.Fatal(err)
	}
	got, err := Load(store, "empty")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || !got.HasNumeric("v") {
		t.Errorf("empty round trip: len=%d hasV=%v", got.Len(), got.HasNumeric("v"))
	}
}
