// Package persist stores datasets in STORM's storage engine — JSON
// documents in the DFS-backed document store — and loads them back,
// implementing the paper's "import the data into the STORM storage engine"
// option (as opposed to indexing a source in place).
//
// Each dataset becomes one docstore collection. The first document is a
// schema record naming the columns (so empty columns survive the round
// trip); every subsequent document is one record with its position and
// non-missing attributes. NaN numeric values (missing attributes) are
// omitted from documents and restored as NaN on load, since JSON cannot
// represent them.
package persist

import (
	"fmt"
	"math"

	"storm/internal/data"
	"storm/internal/docstore"
	"storm/internal/geo"
)

// schemaDoc is the collection's first document.
const schemaKey = "_storm_schema"

// Save writes the dataset into the store as collection ds.Name(),
// replacing nothing (saving an already-saved name is an error to avoid
// silently mixing two datasets in one collection).
func Save(store *docstore.Store, ds *data.Dataset) error {
	for _, existing := range store.Collections() {
		if existing == ds.Name() {
			return fmt.Errorf("persist: collection %q already exists", ds.Name())
		}
	}
	numCols := ds.NumericColumns()
	strCols := ds.StringColumns()
	schema := docstore.Document{
		schemaKey: true,
		"name":    ds.Name(),
		"numeric": toAnySlice(numCols),
		"string":  toAnySlice(strCols),
		"records": float64(ds.Len()),
	}
	if _, err := store.Insert(ds.Name(), schema); err != nil {
		return fmt.Errorf("persist: writing schema: %w", err)
	}
	for i := 0; i < ds.Len(); i++ {
		id := data.ID(i)
		p := ds.Pos(id)
		num := map[string]any{}
		for _, c := range numCols {
			v, err := ds.Numeric(c, id)
			if err != nil {
				return err
			}
			if !math.IsNaN(v) {
				num[c] = v
			}
		}
		str := map[string]any{}
		for _, c := range strCols {
			v, err := ds.String(c, id)
			if err != nil {
				return err
			}
			if v != "" {
				str[c] = v
			}
		}
		doc := docstore.Document{
			"x": p.X(), "y": p.Y(), "t": p.T(),
			"n": num, "s": str,
		}
		if _, err := store.Insert(ds.Name(), doc); err != nil {
			return fmt.Errorf("persist: writing record %d: %w", i, err)
		}
	}
	if err := store.Flush(ds.Name()); err != nil {
		return fmt.Errorf("persist: flushing: %w", err)
	}
	return nil
}

func toAnySlice(ss []string) []any {
	out := make([]any, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}

// Load reads a dataset previously written by Save.
func Load(store *docstore.Store, name string) (*data.Dataset, error) {
	ds := data.NewDataset(name)
	sawSchema := false
	var numCols, strCols []string
	var loadErr error
	err := store.Scan(name, func(id int64, doc docstore.Document) bool {
		if !sawSchema {
			if doc[schemaKey] != true {
				loadErr = fmt.Errorf("persist: collection %q is not a STORM dataset (no schema record)", name)
				return false
			}
			sawSchema = true
			numCols = fromAnySlice(doc["numeric"])
			strCols = fromAnySlice(doc["string"])
			for _, c := range numCols {
				ds.AddNumericColumn(c)
			}
			for _, c := range strCols {
				ds.AddStringColumn(c)
			}
			return true
		}
		x, okX := doc["x"].(float64)
		y, okY := doc["y"].(float64)
		t, okT := doc["t"].(float64)
		if !okX || !okY || !okT {
			loadErr = fmt.Errorf("persist: document %d of %q has malformed coordinates", id, name)
			return false
		}
		rid := ds.AppendFast(geo.Vec{x, y, t})
		if n, ok := doc["n"].(map[string]any); ok {
			for c, v := range n {
				if fv, ok := v.(float64); ok {
					if err := ds.SetNumeric(c, rid, fv); err != nil {
						loadErr = fmt.Errorf("persist: document %d of %q: %w", id, name, err)
						return false
					}
				}
			}
		}
		if s, ok := doc["s"].(map[string]any); ok {
			for c, v := range s {
				if sv, ok := v.(string); ok {
					if err := ds.SetString(c, rid, sv); err != nil {
						loadErr = fmt.Errorf("persist: document %d of %q: %w", id, name, err)
						return false
					}
				}
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if loadErr != nil {
		return nil, loadErr
	}
	if !sawSchema {
		return nil, fmt.Errorf("persist: collection %q is empty", name)
	}
	// Restore NaN for missing numeric attributes: AppendFast fills zeros,
	// so pre-mark everything NaN then overwrite... AppendFast already ran;
	// instead, mark rows lacking a stored value. We re-scan cheaply via a
	// presence pass below.
	return ds, restoreMissing(store, name, ds, numCols)
}

// restoreMissing sets numeric attributes absent from the stored documents
// back to NaN (AppendFast initializes them to zero).
func restoreMissing(store *docstore.Store, name string, ds *data.Dataset, numCols []string) error {
	if len(numCols) == 0 {
		return nil
	}
	row := -1
	return store.Scan(name, func(id int64, doc docstore.Document) bool {
		if doc[schemaKey] == true {
			return true
		}
		row++
		n, _ := doc["n"].(map[string]any)
		for _, c := range numCols {
			if _, present := n[c]; !present {
				ds.SetNumeric(c, data.ID(row), math.NaN())
			}
		}
		return true
	})
}

func fromAnySlice(v any) []string {
	raw, ok := v.([]any)
	if !ok {
		return nil
	}
	out := make([]string, 0, len(raw))
	for _, e := range raw {
		if s, ok := e.(string); ok {
			out = append(out, s)
		}
	}
	return out
}
