// Benchmarks regenerating the paper's evaluation, one per figure (see
// DESIGN.md §3 and EXPERIMENTS.md). The per-sample benchmarks measure the
// steady-state cost of the four sampling methods of Figure 3(a); the
// harness benchmarks run the full figure pipelines at reduced scale and
// report the figure's headline quantities as custom metrics. cmd/stormbench
// runs the same pipelines at paper scale.
package storm

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"storm/internal/bench"
	"storm/internal/data"
	"storm/internal/estimator"
	"storm/internal/gen"
	"storm/internal/geo"
	"storm/internal/hilbert"
	"storm/internal/ingest"
	"storm/internal/iosim"
	"storm/internal/lstree"
	"storm/internal/rstree"
	"storm/internal/rtree"
	"storm/internal/sampling"
	"storm/internal/stats"
)

// ---- shared fixtures (built once across benchmarks) ----

var (
	fixOnce    sync.Once
	fixDS      *data.Dataset
	fixEntries []data.Entry
	fixPlain   *rtree.Tree
	fixRS      *rstree.Index
	fixLS      *lstree.Index
	fixQuery   geo.Rect
)

func fixture(b *testing.B) {
	b.Helper()
	fixOnce.Do(func() {
		fixDS = gen.OSM(gen.OSMConfig{N: 500_000, Seed: 1})
		fixEntries = fixDS.Entries()
		fixPlain = rtree.MustNew(rtree.Config{Fanout: 64})
		fixPlain.BulkLoad(fixEntries)
		var err error
		fixRS, err = rstree.Build(fixEntries, rstree.Config{Fanout: 64, Seed: 1})
		if err != nil {
			panic(err)
		}
		fixLS, err = lstree.Build(fixEntries, lstree.Config{Fanout: 64, Seed: 1})
		if err != nil {
			panic(err)
		}
		fixQuery = geo.Range{MinX: -76, MinY: 38.7, MaxX: -72, MaxY: 42.7,
			MinT: 0, MaxT: 86400 * 365}.Rect()
	})
}

// drawN pulls b.N samples from a sampler factory, restarting the stream
// whenever it is exhausted (so b.N can exceed q).
func drawN(b *testing.B, mk func(seed int64) sampling.Sampler) {
	b.Helper()
	seed := int64(1)
	s := mk(seed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Next(); !ok {
			seed++
			s = mk(seed)
			i--
		}
	}
}

// ---- Figure 3(a): per-sample cost of each method ----

func BenchmarkFig3aSampleRSTree(b *testing.B) {
	fixture(b)
	drawN(b, func(seed int64) sampling.Sampler {
		return fixRS.Sampler(fixQuery, sampling.WithoutReplacement, stats.NewRNG(seed))
	})
}

func BenchmarkFig3aSampleLSTree(b *testing.B) {
	fixture(b)
	drawN(b, func(seed int64) sampling.Sampler {
		return fixLS.Sampler(fixQuery, stats.NewRNG(seed))
	})
}

func BenchmarkFig3aSampleRandomPath(b *testing.B) {
	fixture(b)
	drawN(b, func(seed int64) sampling.Sampler {
		return sampling.NewRandomPath(fixPlain, fixQuery, sampling.WithoutReplacement, stats.NewRNG(seed))
	})
}

func BenchmarkFig3aSampleRangeReport(b *testing.B) {
	fixture(b)
	drawN(b, func(seed int64) sampling.Sampler {
		return sampling.NewQueryFirst(fixPlain, fixQuery, sampling.WithoutReplacement, stats.NewRNG(seed))
	})
}

func BenchmarkFig3aSampleSampleFirst(b *testing.B) {
	fixture(b)
	drawN(b, func(seed int64) sampling.Sampler {
		return sampling.NewSampleFirst(fixDS, fixQuery, sampling.WithoutReplacement, stats.NewRNG(seed), nil, 64)
	})
}

// BenchmarkFig3aHarness runs the complete Figure 3(a) pipeline (all
// methods × all k) at reduced scale and reports the k/q = 10% simulated
// I/O of the two headline methods.
func BenchmarkFig3aHarness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := bench.Fig3a(bench.Fig3aConfig{N: 200_000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		last := map[string]bench.Fig3aPoint{}
		for _, p := range pts {
			last[p.Method] = p
		}
		b.ReportMetric(float64(last["RS-tree"].Reads), "rs-reads@10%")
		b.ReportMetric(float64(last["RangeReport"].Reads), "rr-reads@10%")
		b.ReportMetric(float64(last["RandomPath"].Reads), "rp-reads@10%")
		b.ReportMetric(float64(last["LS-tree"].Reads), "ls-reads@10%")
	}
}

// ---- Batched sampling fast path ----

// batchedFix builds the RS-tree once over a Figure 3(a)-style device:
// a buffer pool of ~1% of the tree's pages, with each query's charges
// attributed through its own Counter as the engine does.
var (
	batchedOnce sync.Once
	batchedDev  *iosim.Device
	batchedRS   *rstree.Index
)

func batchedFix(b *testing.B) {
	b.Helper()
	fixture(b)
	batchedOnce.Do(func() {
		batchedDev = iosim.NewDevice(128, iosim.DefaultCostModel())
		var err error
		batchedRS, err = rstree.Build(fixEntries, rstree.Config{Fanout: 64, Seed: 1, Device: batchedDev})
		if err != nil {
			panic(err)
		}
	})
}

// BenchmarkBatchedSampling is the headline comparison for the batched
// read path: k=2000 RS-tree samples per iteration, drawn one Next at a
// time versus one NextBatch call. Both produce the identical stream; the
// batch path amortizes device-lock rounds and scratch allocations.
// WithReplacement is the charge-dominated regime (every draw descends the
// tree, charging each level); WithoutReplacement mixes draw charges with
// materialization scans that both paths share.
func BenchmarkBatchedSampling(b *testing.B) {
	const k = 2000
	batchedFix(b)
	buf := make([]data.Entry, k)

	run := func(mode sampling.Mode) func(b *testing.B) {
		return func(b *testing.B) {
			b.Run("Next", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					s := batchedRS.Sampler(fixQuery, mode, stats.NewRNG(int64(i)+1))
					s.AttributeIO(iosim.NewCounter(batchedDev))
					for j := 0; j < k; j++ {
						if _, ok := s.Next(); !ok {
							b.Fatal("exhausted")
						}
					}
				}
			})
			b.Run("NextBatch", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					s := batchedRS.Sampler(fixQuery, mode, stats.NewRNG(int64(i)+1))
					s.AttributeIO(iosim.NewCounter(batchedDev))
					if got := s.NextBatch(buf, k); got != k {
						b.Fatal("exhausted")
					}
				}
			})
		}
	}
	b.Run("WithReplacement", run(sampling.WithReplacement))
	b.Run("WithoutReplacement", run(sampling.WithoutReplacement))
	// Steady state: a warmed with-replacement sampler re-batching from
	// published buffers — the allocation-free hot loop (0 allocs/op).
	b.Run("SteadyState", func(b *testing.B) {
		s := batchedRS.Sampler(fixQuery, sampling.WithReplacement, stats.NewRNG(1))
		s.AttributeIO(iosim.NewCounter(batchedDev))
		s.NextBatch(buf, k) // warm: alias tables, batcher, scratch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.NextBatch(buf, k)
		}
	})
}

// ---- Figure 3(b): online accuracy ----

func BenchmarkFig3b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := bench.Fig3b(bench.Fig3bConfig{N: 200_000, Seed: 1, Trials: 2,
			Checkpoints: []int{16, 64, 256, 1024}})
		if err != nil {
			b.Fatal(err)
		}
		var rsFinal, lsFinal float64
		for _, p := range pts {
			if p.Samples == 1024 {
				if p.Method == "RS-tree" {
					rsFinal = p.RelErr
				} else {
					lsFinal = p.RelErr
				}
			}
		}
		b.ReportMetric(rsFinal*100, "rs-err%@1024")
		b.ReportMetric(lsFinal*100, "ls-err%@1024")
	}
}

// ---- Figure 5: online KDE ----

func BenchmarkFig5KDE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := bench.Fig5(bench.Fig5Config{N: 150_000, Grid: 16, Seed: 1,
			Checkpoints: []int{100, 1000}})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Samples == 1000 && p.Region == "USA" {
				b.ReportMetric(p.RelErr, "usa-err@1000")
			}
		}
	}
}

// ---- Figure 6(a): online trajectory ----

func BenchmarkFig6aTrajectory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, _, err := bench.Fig6a(bench.Fig6aConfig{N: 80_000, Users: 10, Seed: 1,
			Checkpoints: []int{25, 250}})
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) > 0 {
			b.ReportMetric(pts[len(pts)-1].PathErr, "path-err")
		}
	}
}

// ---- Figure 6(b): online short-text terms ----

func BenchmarkFig6bTerms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig6b(bench.Fig6bConfig{N: 150_000, Seed: 1,
			Checkpoints: []int{50, 500}})
		if err != nil {
			b.Fatal(err)
		}
		if n := len(res.Points); n > 0 {
			b.ReportMetric(res.Points[n-1].Recall, "top10-recall")
		}
	}
}

// ---- Ablations ----

func BenchmarkAblationBufferPool(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := bench.A1(bench.A1Config{N: 150_000, K: 1000, Seed: 1,
			PoolFracs: []float64{0, 0.1}})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Method == "RS-tree" && p.PoolFrac == 0.1 {
				b.ReportMetric(p.HitRate, "rs-hit-rate@10%pool")
			}
		}
	}
}

func BenchmarkAblationSampleBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := bench.A2(bench.A2Config{N: 150_000, K: 1000, Fanout: 16, Seed: 1,
			BufSizes: []int{4, 64}})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(pts[0].Explosions), "explosions@S=4")
		b.ReportMetric(float64(pts[1].Explosions), "explosions@S=64")
	}
}

func BenchmarkUpdates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.A3(bench.A3Config{N: 80_000, Updates: 8_000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			if r.Index == "RS-tree" {
				b.ReportMetric(r.InsertsPerSecond, "rs-inserts/s")
			} else {
				b.ReportMetric(r.InsertsPerSecond, "ls-inserts/s")
			}
		}
	}
}

func BenchmarkDistributed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := bench.A4(bench.A4Config{N: 150_000, K: 2000, Seed: 1,
			Shards: []int{1, 4}})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(pts[1].Messages), "messages@4shards")
	}
}

func BenchmarkPackingQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := bench.A6(bench.A6Config{N: 60_000, Queries: 5, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			switch p.Packing {
			case "str (default)":
				b.ReportMetric(p.AvgReads, "str-reads")
			case "hilbert":
				b.ReportMetric(p.AvgReads, "hilbert-reads")
			case "insert-built":
				b.ReportMetric(p.AvgReads, "insert-reads")
			}
		}
	}
}

func BenchmarkIndexBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := bench.A5(bench.A5Config{Sizes: []int{100_000}, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			switch p.Index {
			case "LS-tree":
				b.ReportMetric(p.BuildMS, "ls-build-ms")
			case "RS-tree":
				b.ReportMetric(p.BuildMS, "rs-build-ms")
			}
		}
	}
}

// ---- substrate micro-benchmarks ----

func BenchmarkRTreeInsert(b *testing.B) {
	rng := stats.NewRNG(1)
	t := rtree.MustNew(rtree.Config{Fanout: 64})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Insert(data.Entry{ID: data.ID(i), Pos: geo.Vec{
			rng.Uniform(0, 1000), rng.Uniform(0, 1000), rng.Uniform(0, 1000)}})
	}
}

func BenchmarkRTreeRangeCount(b *testing.B) {
	fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fixPlain.Count(fixQuery)
	}
}

func BenchmarkHilbertEncode3D(b *testing.B) {
	c := hilbert.MustNew(3, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Encode(uint64(i)&0xFFFF, uint64(i*7)&0xFFFF, uint64(i*13)&0xFFFF)
	}
}

func BenchmarkEstimatorAdd(b *testing.B) {
	est := estimator.MustNew(estimator.Avg, 0.95, 1<<30, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Add(float64(i % 1000))
	}
}

func BenchmarkEstimatorSnapshot(b *testing.B) {
	est := estimator.MustNew(estimator.Avg, 0.95, 1<<30, true)
	for i := 0; i < 1000; i++ {
		est.Add(float64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Snapshot()
	}
}

// ---- concurrent query throughput ----

// BenchmarkConcurrentQueries measures aggregate sampling throughput with
// 1, 2, 4 and 8 parallel clients against one dataset — the workload the
// shared-immutable/query-local split exists for. Each iteration runs every
// client's without-replacement RS-tree query to completion and the metric
// is total samples per wall-clock second. Scaling beyond one client
// requires GOMAXPROCS > 1; on a single-core host the numbers measure the
// synchronization overhead instead.
func BenchmarkConcurrentQueries(b *testing.B) {
	fixture(b)
	qr := geo.Range{MinX: -76, MinY: 38.7, MaxX: -72, MaxY: 42.7,
		MinT: 0, MaxT: 86400 * 365}
	const perQuery = 2000
	for _, clients := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			db := Open(Config{Seed: 1, Fanout: 64})
			h, err := db.Register(fixDS, IndexOptions{})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func(seed int64) {
						defer wg.Done()
						got, err := h.Sample(qr, perQuery, MethodRSTree, WithoutReplacement, seed)
						if err != nil || len(got) == 0 {
							b.Errorf("sample: %v (%d entries)", err, len(got))
						}
					}(int64(i*64 + c + 1))
				}
				wg.Wait()
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*clients*perQuery)/b.Elapsed().Seconds(), "samples/s")
		})
	}
}

// BenchmarkIngestConcurrentQueries extends BenchmarkConcurrentQueries with
// a live firehose: a background producer streams synthetic records through
// the buffered ingest path (package ingest) while 1-8 clients run
// `LAST`-windowed COUNT estimates. The metrics are windowed queries per
// second and the insert throughput sustained at the same time. A fresh
// OSM dataset is built per sub-benchmark — ingest mutates it, so the
// shared read-only fixture cannot be used.
func BenchmarkIngestConcurrentQueries(b *testing.B) {
	qr := geo.Range{MinX: -76, MinY: 38.7, MaxX: -72, MaxY: 42.7,
		MinT: 0, MaxT: 86400 * 365}
	const window = 60 * time.Second
	for _, clients := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			ds := gen.OSM(gen.OSMConfig{N: 200_000, Seed: 2})
			db := Open(Config{Seed: 1, Fanout: 64})
			h, err := db.Register(ds, IndexOptions{})
			if err != nil {
				b.Fatal(err)
			}
			wm, _ := h.Watermark()
			in := ingest.New(h, ingest.Config{
				Shards: 8, FlushRecords: 8192, MaxBatch: 8192,
				Window: window, Seed: 1, Name: fmt.Sprintf("bench-c%d", clients),
			})
			defer in.Close()
			// Open-loop background producer: 512-row chunks of synthetic
			// records, event clock advancing past the preloaded watermark.
			var (
				stop     atomic.Bool
				inserted atomic.Int64
				prodWG   sync.WaitGroup
			)
			rng := stats.NewRNG(7)
			prodWG.Add(1)
			go func() {
				defer prodWG.Done()
				t := wm
				chunk := make([]data.Row, 512)
				for !stop.Load() {
					for i := range chunk {
						t += 0.05
						chunk[i] = data.Row{Pos: geo.Vec{
							-76 + rng.Float64()*4, 38.7 + rng.Float64()*4, t,
						}}
					}
					if err := in.AppendBatch(chunk); err != nil {
						time.Sleep(time.Millisecond)
						continue
					}
					inserted.Add(int64(len(chunk)))
				}
			}()
			// Prewarm: at least one drained chunk so windowed queries see a
			// stream watermark before timing starts.
			for in.Accepted() < 512 {
				time.Sleep(time.Millisecond)
			}
			in.Flush()
			preTimer := inserted.Load()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func(seed int64) {
						defer wg.Done()
						_, err := h.Estimate(context.Background(), qr, Options{
							Kind: estimator.Count, Last: window,
							MaxSamples: 1000, Seed: seed,
						})
						if err != nil {
							b.Errorf("estimate: %v", err)
						}
					}(int64(i*64 + c + 1))
				}
				wg.Wait()
			}
			b.StopTimer()
			stop.Store(true)
			prodWG.Wait()
			b.ReportMetric(float64(b.N*clients)/b.Elapsed().Seconds(), "queries/s")
			b.ReportMetric(float64(inserted.Load()-preTimer)/b.Elapsed().Seconds(), "inserts/s")
		})
	}
}
