package storm_test

import (
	"context"
	"fmt"

	"storm"
)

// ExampleHandle_Estimate runs an online aggregation to a fixed sample
// budget; with a deterministic seed the estimate is reproducible.
func ExampleHandle_Estimate() {
	db := storm.Open(storm.Config{Seed: 1})
	ds := storm.GenerateOSM(storm.OSMConfig{N: 100_000, Seed: 1})
	h, err := db.Register(ds, storm.IndexOptions{})
	if err != nil {
		panic(err)
	}
	slc := storm.Range{MinX: -112.4, MinY: 40.2, MaxX: -111.4, MaxY: 41.2,
		MinT: 0, MaxT: 86400 * 365}
	snap, err := h.Estimate(context.Background(), slc, storm.Options{
		Kind: storm.Avg, Attr: "altitude", MaxSamples: 400, Seed: 42,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s after %d samples (population %d)\n",
		snap.Kind, snap.Samples, snap.Population)
	// Output: AVG after 400 samples (population 3848)
}

// ExampleHandle_Count shows exact range counting via canonical subtree
// counts — no sampling involved.
func ExampleHandle_Count() {
	db := storm.Open(storm.Config{Seed: 2})
	ds := storm.GenerateOSM(storm.OSMConfig{N: 50_000, Seed: 2})
	h, err := db.Register(ds, storm.IndexOptions{})
	if err != nil {
		panic(err)
	}
	n := h.Count(storm.UniverseRange())
	fmt.Println(n)
	// Output: 50000
}

// ExampleExec drives the STORM query language programmatically.
func ExampleExec() {
	db := storm.Open(storm.Config{Seed: 3})
	ds := storm.GenerateStations(storm.StationsConfig{
		Stations: 100, ReadingsPerStation: 10, Seed: 3,
	})
	if _, err := db.Register(ds, storm.IndexOptions{}); err != nil {
		panic(err)
	}
	var out printer
	if err := storm.Exec(context.Background(), db, "COUNT FROM mesowest", &out); err != nil {
		panic(err)
	}
	// Output: COUNT = 1000 (exact, 0 records)  t=0s sampler=range-count [final]
}

// printer writes query output straight to the example's stdout.
type printer struct{}

func (printer) Write(p []byte) (int, error) {
	fmt.Print(string(p))
	return len(p), nil
}
