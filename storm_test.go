package storm

import (
	"bytes"
	"context"
	"io"
	"math"
	"strings"
	"testing"
)

// TestPublicAPIEndToEnd walks the README quick-start path: open, generate,
// register, estimate, and verify the estimate brackets the truth.
func TestPublicAPIEndToEnd(t *testing.T) {
	db := Open(Config{Seed: 1})
	ds := GenerateOSM(OSMConfig{N: 50000, Seed: 1})
	h, err := db.Register(ds, IndexOptions{LSTree: true})
	if err != nil {
		t.Fatal(err)
	}

	q := Range{MinX: -112.2, MinY: 40.3, MaxX: -111.6, MaxY: 41.0, MinT: 0, MaxT: 86400 * 365}
	cnt := h.Count(q)
	if cnt == 0 {
		t.Fatal("no records around Salt Lake City")
	}

	// Ground truth.
	col, err := ds.NumericColumn("altitude")
	if err != nil {
		t.Fatal(err)
	}
	rect := q.Rect()
	var sum float64
	n := 0
	for i := 0; i < ds.Len(); i++ {
		if rect.Contains(ds.Pos(uint64(i))) {
			sum += col[i]
			n++
		}
	}
	truth := sum / float64(n)

	snap, err := h.Estimate(context.Background(), q, Options{
		Kind: Avg, Attr: "altitude", TargetRelError: 0.005,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Done {
		t.Fatal("estimate did not finish")
	}
	if math.Abs(snap.Value-truth) > 3*snap.HalfWidth+1e-9 && !snap.Exact {
		t.Errorf("estimate %v ± %v vs truth %v", snap.Value, snap.HalfWidth, truth)
	}
}

func TestQueryLanguageThroughFacade(t *testing.T) {
	db := Open(Config{Seed: 2})
	stations := GenerateStations(StationsConfig{Stations: 500, ReadingsPerStation: 48, Seed: 2})
	if _, err := db.Register(stations, IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := Exec(context.Background(), db,
		`ESTIMATE AVG(temp) FROM mesowest WHERE REGION(-125, 24, -66, 50) SAMPLES 400`, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "AVG") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestImportThroughFacade(t *testing.T) {
	csv := "lon,lat,time,reading\n-111.9,40.7,100,5.5\n-74.0,40.7,200,6.5\n"
	res, err := ImportCSV("sensors", ',', func() (io.Reader, error) {
		return strings.NewReader(csv), nil
	}, Mapping{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 2 {
		t.Fatalf("rows = %d", res.Rows)
	}
	db := Open(Config{Seed: 3})
	h, err := db.Register(res.Dataset, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := h.Estimate(context.Background(), UniverseRange(), Options{Kind: Avg, Attr: "reading"})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Value != 6 {
		t.Errorf("avg = %v, want 6", snap.Value)
	}
}

func TestGenerateTweetsFacade(t *testing.T) {
	ds, truth := GenerateTweets(TweetsConfig{N: 1000, Users: 10, Seed: 4})
	if ds.Len() != 1000 || len(truth) == 0 {
		t.Fatalf("tweets = %d, users = %d", ds.Len(), len(truth))
	}
}

func TestSessionFacade(t *testing.T) {
	db := Open(Config{Seed: 5})
	ds := GenerateOSM(OSMConfig{N: 5000, Seed: 5})
	h, err := db.Register(ds, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(h)
	ch, err := s.EstimateOnline(context.Background(), SpatialRange(-125, 24, -66, 50), Options{
		Kind: Avg, Attr: "altitude", MaxSamples: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	var last Snapshot
	for snap := range ch {
		last = snap
	}
	if !last.Done || last.Samples != 200 {
		t.Errorf("session query: %+v", last)
	}
	s.Stop()
}
