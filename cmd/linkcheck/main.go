// Command linkcheck verifies the repository's markdown documentation:
// every relative link must point at an existing file, and every anchor
// (in-page or cross-page "#section" fragments) must match a heading in
// the target document, using GitHub's heading-slug rules. External
// http(s) and mailto links are skipped — CI stays hermetic. It is a
// stdlib-only stand-in for a markdown link checker, in the spirit of
// cmd/docslint.
//
//	linkcheck file.md [file.md ...]
//
// Exit status is non-zero when any link is broken; each violation prints
// as file:line: message.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links [text](target). Images
// ![alt](target) match too — the leading "!" changes rendering, not
// resolution. Nested brackets and reference-style links are out of
// scope for the docs this repo writes.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// headingRE matches ATX headings; the captured text feeds the slugger.
var headingRE = regexp.MustCompile("^#{1,6}\\s+(.*?)\\s*#*\\s*$")

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck file.md [file.md ...]")
		os.Exit(2)
	}
	bad := 0
	anchors := map[string]map[string]bool{} // file path -> slug set
	for _, f := range os.Args[1:] {
		violations, err := checkFile(f, anchors)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %s: %v\n", f, err)
			os.Exit(2)
		}
		for _, v := range violations {
			fmt.Println(v)
		}
		bad += len(violations)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s)\n", bad)
		os.Exit(1)
	}
}

// checkFile scans one markdown file and returns a violation per broken
// relative link or unresolved anchor.
func checkFile(path string, anchors map[string]map[string]bool) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []string
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if msg := checkTarget(path, target, anchors); msg != "" {
				out = append(out, fmt.Sprintf("%s:%d: %s", path, i+1, msg))
			}
		}
	}
	return out, nil
}

// checkTarget resolves one link target relative to the linking file.
// External schemes pass; everything else must exist on disk, and a .md
// target's "#fragment" must match a heading slug.
func checkTarget(from, target string, anchors map[string]map[string]bool) string {
	switch {
	case strings.HasPrefix(target, "http://"),
		strings.HasPrefix(target, "https://"),
		strings.HasPrefix(target, "mailto:"):
		return ""
	}
	file, frag, _ := strings.Cut(target, "#")
	dest := from
	if file != "" {
		dest = filepath.Join(filepath.Dir(from), file)
		if _, err := os.Stat(dest); err != nil {
			return fmt.Sprintf("link %q: target %s does not exist", target, dest)
		}
	}
	if frag == "" {
		return ""
	}
	if !strings.HasSuffix(dest, ".md") {
		return "" // anchors into non-markdown targets are not checkable
	}
	set, err := headingSlugs(dest, anchors)
	if err != nil {
		return fmt.Sprintf("link %q: reading %s: %v", target, dest, err)
	}
	if !set[strings.ToLower(frag)] {
		return fmt.Sprintf("link %q: no heading for anchor #%s in %s", target, frag, dest)
	}
	return ""
}

// headingSlugs returns (and caches) the GitHub-style anchor slugs of
// every heading in a markdown file.
func headingSlugs(path string, cache map[string]map[string]bool) (map[string]bool, error) {
	if set, ok := cache[path]; ok {
		return set, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	set := map[string]bool{}
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		m := headingRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		slug := slugify(m[1])
		// GitHub dedupes repeated headings with -1, -2, ... suffixes.
		if set[slug] {
			for n := 1; ; n++ {
				cand := fmt.Sprintf("%s-%d", slug, n)
				if !set[cand] {
					slug = cand
					break
				}
			}
		}
		set[slug] = true
	}
	cache[path] = set
	return set, nil
}

// slugify lowercases a heading, drops everything but letters, digits,
// spaces, hyphens and underscores, and turns spaces into hyphens —
// GitHub's anchor algorithm for ASCII-ish headings. Inline code spans
// and emphasis markers are stripped first.
func slugify(heading string) string {
	heading = strings.NewReplacer("`", "", "*", "", "_", "_").Replace(heading)
	// Drop inline links' targets: "[text](url)" anchors on "text".
	heading = linkRE.ReplaceAllString(heading, "")
	heading = strings.TrimSuffix(heading, "[")
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		case r >= 0x80: // keep non-ASCII letters (GitHub does)
			b.WriteRune(r)
		}
	}
	return b.String()
}
