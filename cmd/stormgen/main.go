// Command stormgen writes STORM's synthetic datasets to files, so they can
// be re-imported through the data connector (cmd/stormimport) or inspected
// directly. Formats: csv (default) or jsonl.
//
//	stormgen -kind osm -n 1000000 -o osm.csv
//	stormgen -kind tweets -n 200000 -format jsonl -o tweets.jsonl
//	stormgen -kind stations -n 40000 -readings 24 -o mesowest.csv
package main

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"

	"storm/internal/data"
	"storm/internal/gen"
)

func main() {
	kind := flag.String("kind", "osm", "dataset kind: osm, tweets, stations")
	n := flag.Int("n", 100_000, "record count (stations: station count)")
	readings := flag.Int("readings", 24, "readings per station (stations only)")
	seed := flag.Int64("seed", 1, "generator seed")
	format := flag.String("format", "csv", "output format: csv, jsonl")
	out := flag.String("o", "", "output path (default stdout)")
	snow := flag.Bool("snowstorm", true, "inject the Atlanta snowstorm event (tweets only)")
	flag.Parse()

	var ds *data.Dataset
	switch *kind {
	case "osm":
		ds = gen.OSM(gen.OSMConfig{N: *n, Seed: *seed})
	case "tweets":
		ds, _ = gen.Tweets(gen.TweetsConfig{N: *n, Seed: *seed, Snowstorm: *snow})
	case "stations":
		ds = gen.Stations(gen.StationsConfig{Stations: *n, ReadingsPerStation: *readings, Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "stormgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stormgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	defer bw.Flush()

	var err error
	switch *format {
	case "csv":
		err = writeCSV(bw, ds)
	case "jsonl":
		err = writeJSONL(bw, ds)
	default:
		fmt.Fprintf(os.Stderr, "stormgen: unknown format %q\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "stormgen: %v\n", err)
		os.Exit(1)
	}
}

func writeCSV(w *bufio.Writer, ds *data.Dataset) error {
	cw := csv.NewWriter(w)
	numCols := ds.NumericColumns()
	strCols := ds.StringColumns()
	header := append([]string{"lon", "lat", "time"}, numCols...)
	header = append(header, strCols...)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, 0, len(header))
	for i := 0; i < ds.Len(); i++ {
		id := data.ID(i)
		p := ds.Pos(id)
		row = row[:0]
		row = append(row,
			strconv.FormatFloat(p.X(), 'g', -1, 64),
			strconv.FormatFloat(p.Y(), 'g', -1, 64),
			strconv.FormatFloat(p.T(), 'g', -1, 64))
		for _, c := range numCols {
			v, _ := ds.Numeric(c, id)
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		for _, c := range strCols {
			v, _ := ds.String(c, id)
			row = append(row, v)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func writeJSONL(w *bufio.Writer, ds *data.Dataset) error {
	enc := json.NewEncoder(w)
	numCols := ds.NumericColumns()
	strCols := ds.StringColumns()
	for i := 0; i < ds.Len(); i++ {
		id := data.ID(i)
		p := ds.Pos(id)
		obj := map[string]any{"lon": p.X(), "lat": p.Y(), "time": p.T()}
		for _, c := range numCols {
			v, _ := ds.Numeric(c, id)
			obj[c] = v
		}
		for _, c := range strCols {
			v, _ := ds.String(c, id)
			obj[c] = v
		}
		if err := enc.Encode(obj); err != nil {
			return err
		}
	}
	return nil
}
