// Command docslint enforces the repository's godoc discipline: every
// exported identifier in the audited packages must carry a doc comment.
// It is a stdlib-only stand-in for the doc-comment checks of revive or
// golint, so CI needs no external tooling.
//
//	docslint [package-dir ...]
//
// With no arguments it audits the root facade (package storm) and the
// observability- and robustness-facing packages (internal/obs,
// internal/engine, internal/distr — including the fault-injection layer —
// internal/wire, internal/server, internal/estimator, internal/bench,
// internal/ingest).
// Exit status is non-zero when any exported identifier lacks a doc
// comment; each violation prints as file:line: name.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// defaultDirs are the packages audited when no arguments are given: the
// root facade (the import downstream users read godoc for) plus the ones
// the observability and fault-tolerance layers promise are fully
// documented (internal/distr covers fault.go's FaultPlan surface).
var defaultDirs = []string{
	".",
	"internal/obs",
	"internal/engine",
	"internal/distr",
	"internal/wire",
	"internal/server",
	"internal/estimator",
	"internal/bench",
	"internal/ingest",
}

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: docslint [package-dir ...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = defaultDirs
	}

	bad := 0
	for _, dir := range dirs {
		violations, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docslint: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, v := range violations {
			fmt.Println(v)
		}
		bad += len(violations)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "docslint: %d exported identifier(s) missing doc comments\n", bad)
		os.Exit(1)
	}
}

// lintDir parses every non-test Go file in dir and returns one
// "file:line: name" string per undocumented exported identifier.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: %s", filepath.ToSlash(p.Filename), p.Line, what))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && exportedReceiver(d) && d.Doc == nil {
						report(d.Pos(), funcLabel(d))
					}
				case *ast.GenDecl:
					lintGenDecl(d, report)
				}
			}
		}
	}
	return out, nil
}

// exportedReceiver reports whether a method's receiver type is itself
// exported (methods on unexported types are internal detail).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true // plain function
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// funcLabel renders "Name" or "(Recv).Name" for a function declaration.
func funcLabel(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	return "(" + recvTypeName(d.Recv.List[0].Type) + ")." + d.Name.Name
}

// recvTypeName extracts the bare receiver type name.
func recvTypeName(t ast.Expr) string {
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return "?"
		}
	}
}

// lintGenDecl checks type, var, and const declarations. A doc comment on
// the grouped declaration covers every spec inside it, matching godoc's
// own rendering; otherwise each exported spec needs its own doc or
// trailing line comment.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string)) {
	groupDocumented := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDocumented && s.Doc == nil {
				report(s.Pos(), s.Name.Name)
			}
		case *ast.ValueSpec:
			if groupDocumented || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), name.Name)
				}
			}
		}
	}
}
