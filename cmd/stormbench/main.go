// Command stormbench regenerates every table and figure of the STORM
// paper's evaluation (SIGMOD 2015) on synthetic data, printing the curves
// the paper plots. See EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	stormbench -fig 3a [-n 2000000]   # Figure 3(a): sampling efficiency
//	stormbench -fig 3b                # Figure 3(b): online accuracy
//	stormbench -fig 5                 # Figure 5: online KDE convergence
//	stormbench -fig 6a                # Figure 6(a): trajectory quality
//	stormbench -fig 6b                # Figure 6(b): short-text recall
//	stormbench -fig a1|a2|a3|a4       # ablations (buffer pool, S(u) size,
//	                                  # updates, distributed scaling)
//	stormbench -fig a7                # fault ablation: kill k of 8 shards
//	                                  # mid-query, CI-width + latency impact
//	stormbench -fig a8                # recovery ablation: kill-then-recover
//	                                  # vs degraded-with-lost-mass-bounds
//	stormbench -fig a9                # transport ablation: loopback vs TCP
//	                                  # round latency + message/byte counts
//	stormbench -fig a10               # predicate pushdown ablation: pruning
//	                                  # vs rejection across selectivities
//	stormbench -fig a11               # contract ablation: ERROR/WITHIN
//	                                  # contracts vs the uncapped stream path
//	stormbench -fig a12               # streaming ingest ablation: sustained
//	                                  # insert rate vs concurrent LAST-window
//	                                  # query latency, buffer-shard sweep
//	stormbench -fig a13               # replication ablation: R=1 degradation
//	                                  # vs R=2 failover on a mid-query crash
//	stormbench -fig all               # everything
//
// -metrics attaches an observability registry (see internal/obs) to each
// figure run and prints the collected counters — per-method sampler draws,
// rejects, explosions, level scans, and physical I/O — after the figure's
// table, in the same storm.* naming scheme that stormd serves at /metrics.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"storm/internal/bench"
	"storm/internal/obs"
	"storm/internal/viz"
)

// emitSeries enables plot-ready series output after each figure's table.
var emitSeries bool

// series prints one curve when -series is set.
func series(title string, xs, ys []float64) {
	if emitSeries {
		fmt.Print(viz.Series(title, xs, ys))
	}
}

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3a, 3b, 5, 6a, 6b, a1, a2, a3, a4, a5, a6, a7, a8, a9, a10, a11, a12, a13, all")
	n := flag.Int("n", 2_000_000, "dataset size for the Figure 3 experiments")
	seed := flag.Int64("seed", 1, "generator/sampling seed")
	flag.BoolVar(&emitSeries, "series", false, "additionally emit plot-ready x<TAB>y series per curve")
	metrics := flag.Bool("metrics", false, "collect and print storm.* observability counters per figure")
	flag.Parse()

	run := func(name string, fn func() error) {
		want := strings.ToLower(*fig)
		if want != "all" && want != name {
			return
		}
		if *metrics {
			// Fresh registry per figure so each dump covers one figure only.
			bench.Obs = obs.NewRegistry()
		}
		fmt.Printf("==== %s ====\n", strings.ToUpper(name))
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "stormbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		if *metrics {
			dumpMetrics(bench.Obs)
		}
		fmt.Println()
	}

	run("3a", func() error { return fig3a(*n, *seed) })
	run("3b", func() error { return fig3b(*n, *seed) })
	run("5", func() error { return fig5(*seed) })
	run("6a", func() error { return fig6a(*seed) })
	run("6b", func() error { return fig6b(*seed) })
	run("a1", func() error { return a1(*seed) })
	run("a2", func() error { return a2(*seed) })
	run("a3", func() error { return a3(*seed) })
	run("a4", func() error { return a4(*seed) })
	run("a5", func() error { return a5(*seed) })
	run("a6", func() error { return a6(*seed) })
	run("a7", func() error { return a7(*seed) })
	run("a8", func() error { return a8(*seed) })
	run("a9", func() error { return a9(*seed) })
	run("a10", func() error { return a10(*seed) })
	run("a11", func() error { return a11(*seed) })
	run("a12", func() error { return a12(*seed) })
	run("a13", func() error { return a13(*seed) })
}

// dumpMetrics prints every registry entry as "name<TAB>value", sorted by
// name, with composite values (histograms) rendered as compact JSON.
func dumpMetrics(reg *obs.Registry) {
	snap := reg.Snapshot()
	if len(snap) == 0 {
		return
	}
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("-- metrics --")
	for _, name := range names {
		b, err := json.Marshal(snap[name])
		if err != nil {
			b = []byte(fmt.Sprintf("%v", snap[name]))
		}
		fmt.Printf("%s\t%s\n", name, b)
	}
}

func a6(seed int64) error {
	fmt.Println("Ablation A6: R-tree packing (Hilbert vs STR vs one-by-one insertion)")
	pts, err := bench.A6(bench.A6Config{Seed: seed})
	if err != nil {
		return err
	}
	rows := [][]string{{"packing", "avg range reads", "avg canonical size"}}
	for _, p := range pts {
		rows = append(rows, []string{
			p.Packing,
			fmt.Sprintf("%.1f", p.AvgReads),
			fmt.Sprintf("%.1f", p.AvgCanonical),
		})
	}
	fmt.Print(viz.Table(rows))
	return nil
}

func a5(seed int64) error {
	fmt.Println("Ablation A5: index construction cost")
	pts, err := bench.A5(bench.A5Config{Seed: seed, Sizes: []int{100_000, 500_000, 2_000_000}})
	if err != nil {
		return err
	}
	rows := [][]string{{"index", "N", "build ms", "nodes", "size ratio"}}
	for _, p := range pts {
		rows = append(rows, []string{
			p.Index,
			fmt.Sprintf("%d", p.N),
			fmt.Sprintf("%.1f", p.BuildMS),
			fmt.Sprintf("%d", p.Nodes),
			fmt.Sprintf("%.2f", p.SizeRatio),
		})
	}
	fmt.Print(viz.Table(rows))
	return nil
}

func fig3a(n int, seed int64) error {
	fmt.Printf("Figure 3(a): time and I/O to draw k online samples (N=%d, q/N=5%%)\n", n)
	pts, err := bench.Fig3a(bench.Fig3aConfig{N: n, Seed: seed, IncludeSampleFirst: true})
	if err != nil {
		return err
	}
	rows := [][]string{{"method", "k/q", "k", "wall ms", "page reads", "cost units"}}
	for _, p := range pts {
		rows = append(rows, []string{
			p.Method,
			fmt.Sprintf("%.1f%%", p.KOverQ*100),
			fmt.Sprintf("%d", p.K),
			fmt.Sprintf("%.2f", p.WallMS),
			fmt.Sprintf("%d", p.Reads),
			fmt.Sprintf("%.0f", p.CostUnits),
		})
	}
	fmt.Print(viz.Table(rows))
	if emitSeries {
		curves := map[string][][2]float64{}
		order := []string{}
		for _, p := range pts {
			if _, ok := curves[p.Method]; !ok {
				order = append(order, p.Method)
			}
			curves[p.Method] = append(curves[p.Method], [2]float64{p.KOverQ, p.WallMS})
		}
		for _, m := range order {
			xs := make([]float64, len(curves[m]))
			ys := make([]float64, len(curves[m]))
			for i, pt := range curves[m] {
				xs[i], ys[i] = pt[0], pt[1]
			}
			series("fig3a "+m+" (k/q vs wall ms)", xs, ys)
		}
	}

	// Paper-style summary at the largest k: ordering of the curves.
	byMethod := map[string]bench.Fig3aPoint{}
	for _, p := range pts {
		byMethod[p.Method] = p // last point per method wins
	}
	fmt.Println()
	labels := []string{"LS-tree", "RS-tree", "RangeReport", "RandomPath", "SampleFirst"}
	vals := make([]float64, 0, len(labels))
	present := labels[:0]
	for _, l := range labels {
		if p, ok := byMethod[l]; ok {
			present = append(present, l)
			vals = append(vals, p.CostUnits)
		}
	}
	fmt.Print(viz.LogBars("simulated I/O cost at k/q = 10% (log scale)", present, vals, "units"))
	return nil
}

func fig3b(n int, seed int64) error {
	fmt.Printf("Figure 3(b): relative error of online avg(altitude) vs time (N=%d)\n", n)
	pts, err := bench.Fig3b(bench.Fig3bConfig{N: n, Seed: seed})
	if err != nil {
		return err
	}
	rows := [][]string{{"method", "samples", "time ms", "rel error"}}
	for _, p := range pts {
		rows = append(rows, []string{
			p.Method,
			fmt.Sprintf("%d", p.Samples),
			fmt.Sprintf("%.3f", p.TimeMS),
			fmt.Sprintf("%.4f%%", p.RelErr*100),
		})
	}
	fmt.Print(viz.Table(rows))
	if emitSeries {
		curves := map[string][][2]float64{}
		order := []string{}
		for _, p := range pts {
			if _, ok := curves[p.Method]; !ok {
				order = append(order, p.Method)
			}
			curves[p.Method] = append(curves[p.Method], [2]float64{p.TimeMS, p.RelErr})
		}
		for _, m := range order {
			xs := make([]float64, len(curves[m]))
			ys := make([]float64, len(curves[m]))
			for i, pt := range curves[m] {
				xs[i], ys[i] = pt[0], pt[1]
			}
			series("fig3b "+m+" (time ms vs rel error)", xs, ys)
		}
	}
	return nil
}

func fig5(seed int64) error {
	fmt.Println("Figure 5: online KDE convergence, SLC zoom-in vs USA zoom-out (1M tweets)")
	pts, err := bench.Fig5(bench.Fig5Config{Seed: seed})
	if err != nil {
		return err
	}
	rows := [][]string{{"region", "samples", "rel error vs exact KDE"}}
	for _, p := range pts {
		rows = append(rows, []string{p.Region, fmt.Sprintf("%d", p.Samples), fmt.Sprintf("%.4f", p.RelErr)})
	}
	fmt.Print(viz.Table(rows))
	return nil
}

func fig6a(seed int64) error {
	fmt.Println("Figure 6(a): online approximate trajectory error vs samples (200k tweets)")
	pts, user, err := bench.Fig6a(bench.Fig6aConfig{Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("reconstructing user %s\n", user)
	rows := [][]string{{"samples", "avg path error (deg)"}}
	for _, p := range pts {
		rows = append(rows, []string{fmt.Sprintf("%d", p.Samples), fmt.Sprintf("%.5f", p.PathErr)})
	}
	fmt.Print(viz.Table(rows))
	return nil
}

func fig6b(seed int64) error {
	fmt.Println("Figure 6(b): online short-text understanding, Atlanta snowstorm window (400k tweets)")
	res, err := bench.Fig6b(bench.Fig6bConfig{Seed: seed})
	if err != nil {
		return err
	}
	rows := [][]string{{"samples", "top-10 recall", "sentiment"}}
	for _, p := range res.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Samples),
			fmt.Sprintf("%.2f", p.Recall),
			fmt.Sprintf("%+.3f", p.Sentiment),
		})
	}
	fmt.Print(viz.Table(rows))
	fmt.Printf("final vocabulary: %s\n", strings.Join(res.TopTerms, ", "))
	return nil
}

func a1(seed int64) error {
	fmt.Println("Ablation A1: buffer-pool sweep (RS-tree vs RandomPath, 500k points, k=2000)")
	pts, err := bench.A1(bench.A1Config{Seed: seed})
	if err != nil {
		return err
	}
	rows := [][]string{{"method", "pool frac", "page reads", "hit rate"}}
	for _, p := range pts {
		rows = append(rows, []string{
			p.Method,
			fmt.Sprintf("%.0f%%", p.PoolFrac*100),
			fmt.Sprintf("%d", p.Reads),
			fmt.Sprintf("%.2f", p.HitRate),
		})
	}
	fmt.Print(viz.Table(rows))
	return nil
}

func a2(seed int64) error {
	fmt.Println("Ablation A2: RS-tree sample-buffer size S(u) (500k points, k=2000)")
	pts, err := bench.A2(bench.A2Config{Seed: seed, Fanout: 16})
	if err != nil {
		return err
	}
	rows := [][]string{{"|S(u)|", "wall ms", "page reads", "explosions", "rejects"}}
	for _, p := range pts {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.BufSize),
			fmt.Sprintf("%.2f", p.WallMS),
			fmt.Sprintf("%d", p.Reads),
			fmt.Sprintf("%d", p.Explosions),
			fmt.Sprintf("%d", p.Rejects),
		})
	}
	fmt.Print(viz.Table(rows))
	return nil
}

func a3(seed int64) error {
	fmt.Println("Ablation A3: ad-hoc updates (200k base, 20k inserts, 10k deletes)")
	res, err := bench.A3(bench.A3Config{Seed: seed})
	if err != nil {
		return err
	}
	rows := [][]string{{"index", "inserts/s", "deletes/s", "fresh samples correct"}}
	for _, r := range res {
		rows = append(rows, []string{
			r.Index,
			fmt.Sprintf("%.0f", r.InsertsPerSecond),
			fmt.Sprintf("%.0f", r.DeletesPerSecond),
			fmt.Sprintf("%v", r.FreshSampled),
		})
	}
	fmt.Print(viz.Table(rows))
	return nil
}

func a4(seed int64) error {
	fmt.Println("Ablation A4: distributed sampling across 1-8 shards (500k points, k=5000)")
	pts, err := bench.A4(bench.A4Config{Seed: seed})
	if err != nil {
		return err
	}
	rows := [][]string{{"shards", "serial ms", "batch ms", "serial msgs", "batch msgs", "max shard share"}}
	for _, p := range pts {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Shards),
			fmt.Sprintf("%.2f", p.WallMS),
			fmt.Sprintf("%.2f", p.WallBatchMS),
			fmt.Sprintf("%d", p.Messages),
			fmt.Sprintf("%d", p.BatchMessages),
			fmt.Sprintf("%.2f", p.MaxShardShare),
		})
	}
	fmt.Print(viz.Table(rows))
	return nil
}

func a7(seed int64) error {
	fmt.Println("Ablation A7: graceful degradation — kill k of 8 shards mid-query (500k points, k=5000 samples)")
	pts, err := bench.A7(bench.A7Config{Seed: seed})
	if err != nil {
		return err
	}
	rows := [][]string{{"killed", "eff pop", "healthy pop", "avg", "ci half-width", "rel width", "wall ms", "crashes", "retries"}}
	for _, p := range pts {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Killed),
			fmt.Sprintf("%d", p.Population),
			fmt.Sprintf("%d", p.HealthyPop),
			fmt.Sprintf("%.2f", p.Value),
			fmt.Sprintf("%.3f", p.HalfWidth),
			fmt.Sprintf("%.4f", p.RelWidth),
			fmt.Sprintf("%.2f", p.WallMS),
			fmt.Sprintf("%d", p.Crashes),
			fmt.Sprintf("%d", p.Retries),
		})
	}
	fmt.Print(viz.Table(rows))
	return nil
}

func a8(seed int64) error {
	fmt.Println("Ablation A8: kill-then-recover — hottest shard crashes mid-query; degraded (never returns,")
	fmt.Println("lost-mass bounds) vs recover (re-admitted mid-query) vs healthy baseline (500k points, k=5000)")
	pts, err := bench.A8(bench.A8Config{Seed: seed})
	if err != nil {
		return err
	}
	rows := [][]string{{"mode", "eff pop", "healthy pop", "avg", "ci half-width", "lost-mass low", "lost-mass high", "wall ms", "crashes", "readmits"}}
	for _, p := range pts {
		lostLow, lostHigh := "-", "-"
		if p.LostLow != 0 || p.LostHigh != 0 {
			lostLow = fmt.Sprintf("%.2f", p.LostLow)
			lostHigh = fmt.Sprintf("%.2f", p.LostHigh)
		}
		rows = append(rows, []string{
			p.Mode,
			fmt.Sprintf("%d", p.Population),
			fmt.Sprintf("%d", p.HealthyPop),
			fmt.Sprintf("%.2f", p.Value),
			fmt.Sprintf("%.3f", p.HalfWidth),
			lostLow,
			lostHigh,
			fmt.Sprintf("%.2f", p.WallMS),
			fmt.Sprintf("%d", p.Crashes),
			fmt.Sprintf("%d", p.Readmits),
		})
	}
	fmt.Print(viz.Table(rows))
	return nil
}
func a9(seed int64) error {
	fmt.Println("Ablation A9: transport — the identical seeded drain through the in-process loopback")
	fmt.Println("cluster vs real TCP shard hosts (8 shards on 4 hosts, 200k points, 20k samples);")
	fmt.Println("streams verified byte-identical, so the delta is pure transport overhead")
	pts, err := bench.A9(bench.A9Config{Seed: seed})
	if err != nil {
		return err
	}
	rows := [][]string{{"transport", "samples", "rounds", "wall ms", "round µs", "messages", "samples moved", "bytes sent", "bytes recv"}}
	for _, p := range pts {
		rows = append(rows, []string{
			p.Transport,
			fmt.Sprintf("%d", p.Samples),
			fmt.Sprintf("%d", p.Rounds),
			fmt.Sprintf("%.2f", p.WallMS),
			fmt.Sprintf("%.1f", p.RoundUS),
			fmt.Sprintf("%d", p.Messages),
			fmt.Sprintf("%d", p.SamplesMoved),
			fmt.Sprintf("%d", p.BytesSent),
			fmt.Sprintf("%d", p.BytesRecv),
		})
	}
	fmt.Print(viz.Table(rows))
	return nil
}

func a10(seed int64) error {
	fmt.Println("Ablation A10: predicate pushdown — the identical seeded AVG WHERE query with")
	fmt.Println("node-summary pruning vs the rejection baseline across predicate selectivities")
	fmt.Println("(200k points, spatially correlated attribute, 1k samples per query); the")
	fmt.Println("distributed pushdown stream is verified byte-identical loopback vs TCP")
	res, err := bench.A10(bench.A10Config{Seed: seed})
	if err != nil {
		return err
	}
	rows := [][]string{{"selectivity", "qualifying", "strategy", "samples", "draws", "rejects", "pruned", "logical IO", "wall ms"}}
	for _, p := range res.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%g%%", p.Selectivity*100),
			fmt.Sprintf("%d", p.Qualifying),
			p.Strategy,
			fmt.Sprintf("%d", p.Samples),
			fmt.Sprintf("%d", p.Draws),
			fmt.Sprintf("%d", p.Rejects),
			fmt.Sprintf("%d", p.Pruned),
			fmt.Sprintf("%d", p.LogicalIO),
			fmt.Sprintf("%.2f", p.WallMS),
		})
	}
	fmt.Print(viz.Table(rows))
	fmt.Printf("wire identity (pushdown over TCP vs loopback): %v\n", res.WireIdentical)
	return nil
}

func a11(seed int64) error {
	fmt.Println("Ablation A11: accuracy/latency contracts — the same seeded AVG query under")
	fmt.Println("ERROR ... AT CONFIDENCE ... WITHIN ... contracts across error targets and")
	fmt.Println("deadlines (200k points, warmed planner profile, 20 runs per cell), against")
	fmt.Println("the uncapped snapshot-stream baseline at the same error targets")
	res, err := bench.A11(bench.A11Config{Seed: seed})
	if err != nil {
		return err
	}
	rows := [][]string{{"mode", "error", "deadline", "met", "degraded", "missed", "p50 ms", "p95 ms", "samples", "achieved", "answers"}}
	for _, p := range res.Points {
		rows = append(rows, []string{
			p.Mode,
			fmt.Sprintf("%g%%", p.ErrTarget*100),
			p.DeadlineLabel(),
			fmt.Sprintf("%d/%d", p.Met, p.Runs),
			fmt.Sprintf("%d", p.Degraded),
			fmt.Sprintf("%d", p.Missed),
			fmt.Sprintf("%.2f", p.P50MS),
			fmt.Sprintf("%.2f", p.P95MS),
			fmt.Sprintf("%.0f", p.MeanSamples),
			fmt.Sprintf("%.3g%%", p.MeanAchieved*100),
			fmt.Sprintf("%.1f", p.MeanSnapshots),
		})
	}
	fmt.Print(viz.Table(rows))
	return nil
}

func a13(seed int64) error {
	fmt.Println("Ablation A13: replication — the query's hottest shard loses a copy mid-stream;")
	fmt.Println("r1-degraded (no second copy: shrunken population, lost-mass bounds) vs")
	fmt.Println("r2-failover (stream reopens on the surviving replica: full population, healthy")
	fmt.Println("CI width) vs the no-fault baseline (500k points, k=5000)")
	pts, err := bench.A13(bench.A13Config{Seed: seed})
	if err != nil {
		return err
	}
	rows := [][]string{{"mode", "R", "eff pop", "healthy pop", "avg", "ci half-width", "lost-mass low", "lost-mass high", "wall ms", "crashes", "failovers", "degraded"}}
	for _, p := range pts {
		lostLow, lostHigh := "-", "-"
		if p.LostLow != 0 || p.LostHigh != 0 {
			lostLow = fmt.Sprintf("%.2f", p.LostLow)
			lostHigh = fmt.Sprintf("%.2f", p.LostHigh)
		}
		rows = append(rows, []string{
			p.Mode,
			fmt.Sprintf("%d", p.Replicas),
			fmt.Sprintf("%d", p.Population),
			fmt.Sprintf("%d", p.HealthyPop),
			fmt.Sprintf("%.2f", p.Value),
			fmt.Sprintf("%.3f", p.HalfWidth),
			lostLow,
			lostHigh,
			fmt.Sprintf("%.2f", p.WallMS),
			fmt.Sprintf("%d", p.Crashes),
			fmt.Sprintf("%d", p.Failovers),
			fmt.Sprintf("%v", p.Degraded),
		})
	}
	fmt.Print(viz.Table(rows))
	return nil
}

func a12(seed int64) error {
	fmt.Println("Ablation A12: streaming ingest — a synthetic firehose through the sharded")
	fmt.Println("ingest buffer draining into the live indexes, while clients run LAST-windowed")
	fmt.Println("COUNT queries on a 25ms tick (200k preloaded, 3M streamed per shard config,")
	fmt.Println("2 paced producers at a 1.15M rec/s offered rate, 2 query clients), against")
	fmt.Println("the static no-ingest baseline")
	res, err := bench.A12(bench.A12Config{Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("static baseline: p50 %.2f ms, p95 %.2f ms\n", res.StaticP50MS, res.StaticP95MS)
	rows := [][]string{{"shards", "inserts/s", "stream ms", "backpressure", "queries", "q p50 ms", "q p95 ms", "p95 ratio", "win retained"}}
	for _, p := range res.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Shards),
			fmt.Sprintf("%.0f", p.InsertsPerSec),
			fmt.Sprintf("%.0f", p.ElapsedMS),
			fmt.Sprintf("%d", p.Backpressure),
			fmt.Sprintf("%d", p.Queries),
			fmt.Sprintf("%.2f", p.QP50MS),
			fmt.Sprintf("%.2f", p.QP95MS),
			fmt.Sprintf("%.2fx", p.RatioP95),
			fmt.Sprintf("%d", p.WindowRetained),
		})
	}
	fmt.Print(viz.Table(rows))
	return nil
}
