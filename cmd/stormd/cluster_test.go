package main

// The real-process cluster smoke test: build the stormd binary, spawn
// four -role=shard processes plus a coordinator, query through HTTP,
// kill one shard host mid-stream, and watch the cluster degrade and then
// recover once the host is restarted. This is the one test that runs the
// PR's whole stack — flag parsing, dataset regeneration on shard hosts,
// the wire protocol over real sockets, consistent-hash placement,
// /healthz and /shards, NDJSON degradation stamps — so it spawns real
// processes and is gated behind STORM_CLUSTER_TEST=1 (see `make
// test-cluster`).

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// genFlags keeps dataset generation small and, critically, identical on
// every process: shard hosts regenerate the datasets from these flags, so
// coordinator and hosts must agree on them exactly.
var genFlags = []string{"-osm", "150000", "-tweets", "20000", "-stations", "100", "-seed", "1"}

func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

// proc is one spawned stormd process.
type proc struct {
	cmd  *exec.Cmd
	http string // HTTP base URL
}

func spawn(t *testing.T, bin string, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s %v: %v", bin, args, err)
	}
	p := &proc{cmd: cmd}
	t.Cleanup(func() {
		if p.cmd.Process != nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	})
	return p
}

func waitHealthz(t *testing.T, url string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("%s/healthz never answered 200 within %v", url, timeout)
}

// shardInfo mirrors server.ShardInfo (decoded from coordinator /shards).
type shardInfo struct {
	Dataset    string `json:"dataset"`
	Remote     bool   `json:"remote"`
	ShardsDown int    `json:"shards_down"`
	Shards     []struct {
		Shard    int    `json:"shard"`
		Addr     string `json:"addr"`
		Down     bool   `json:"down"`
		Replicas []struct {
			Replica int    `json:"replica"`
			Addr    string `json:"addr"`
			Down    bool   `json:"down"`
		} `json:"replicas"`
	} `json:"shards"`
}

func getShards(t *testing.T, base string) []shardInfo {
	t.Helper()
	resp, err := http.Get(base + "/shards")
	if err != nil {
		t.Fatalf("GET /shards: %v", err)
	}
	defer resp.Body.Close()
	var infos []shardInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatalf("decoding /shards: %v", err)
	}
	return infos
}

// snapshotLine is the subset of the NDJSON snapshot schema the smoke test
// asserts on.
type snapshotLine struct {
	Done       bool    `json:"done"`
	Exact      bool    `json:"exact"`
	Degraded   bool    `json:"degraded"`
	Recovered  bool    `json:"recovered"`
	FailedOver bool    `json:"failed_over"`
	ShardsLost int     `json:"shards_lost"`
	Population int     `json:"population"`
	Samples    int     `json:"samples"`
	Value      float64 `json:"value"`
}

// estimate POSTs the statement and returns the final snapshot; when
// midStream is non-nil it runs after the first NDJSON line, with the
// stream still open.
func estimate(t *testing.T, base, statement string, midStream func()) snapshotLine {
	t.Helper()
	body := fmt.Sprintf(`{"statement": %q}`, statement)
	resp, err := http.Post(base+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /query: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query = %d", resp.StatusCode)
	}
	var last snapshotLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	first := true
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if first && midStream != nil {
			midStream()
		}
		first = false
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading NDJSON stream: %v", err)
	}
	if !last.Done {
		t.Fatalf("stream ended without a done snapshot: %+v", last)
	}
	return last
}

func TestClusterSmoke(t *testing.T) {
	if os.Getenv("STORM_CLUSTER_TEST") == "" {
		t.Skip("set STORM_CLUSTER_TEST=1 to run the real-process cluster smoke test")
	}

	bin := filepath.Join(t.TempDir(), "stormd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building stormd: %v\n%s", err, out)
	}

	// Four shard hosts: wire RPC port + HTTP healthz port each.
	const hosts = 4
	wireAddrs := make([]string, hosts)
	shardArgs := make([][]string, hosts)
	shardProcs := make([]*proc, hosts)
	for i := 0; i < hosts; i++ {
		wireAddrs[i] = fmt.Sprintf("127.0.0.1:%d", freePort(t))
		httpAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
		shardArgs[i] = append([]string{
			"-role=shard", "-wire-addr", wireAddrs[i], "-addr", httpAddr,
		}, genFlags...)
		shardProcs[i] = spawn(t, bin, shardArgs[i]...)
		shardProcs[i].http = "http://" + httpAddr
	}
	for _, p := range shardProcs {
		waitHealthz(t, p.http, 60*time.Second)
	}

	// Coordinator: registration blocks on remote shard builds, so give
	// the health check a generous deadline.
	coordAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	coord := spawn(t, bin, append([]string{
		"-role=coordinator", "-shards", strings.Join(wireAddrs, ","),
		"-addr", coordAddr, "-no-pprof",
	}, genFlags...)...)
	coord.http = "http://" + coordAddr
	waitHealthz(t, coord.http, 180*time.Second)

	// Placement sanity: every dataset runs remote with 4 healthy shards.
	infos := getShards(t, coord.http)
	if len(infos) != 3 {
		t.Fatalf("/shards lists %d datasets, want 3", len(infos))
	}
	for _, info := range infos {
		if !info.Remote || info.ShardsDown != 0 || len(info.Shards) != 4 {
			t.Fatalf("unhealthy cluster before faults: %+v", info)
		}
	}

	// Healthy baseline: exhaustive exact AVG over the whole space.
	const stmt = "ESTIMATE AVG(altitude) FROM osm WHERE REGION(-180,-90,180,90) WITH ERROR 0.0001%"
	healthy := estimate(t, coord.http, stmt, nil)
	if !healthy.Exact || healthy.Degraded || healthy.Population == 0 {
		t.Fatalf("healthy baseline: %+v", healthy)
	}

	// Find a host serving osm shards and kill it mid-stream: the open
	// query must lose its shards, degrade onto the survivors, and still
	// complete.
	var victim *proc
	var victimIdx int
	for _, info := range infos {
		if info.Dataset != "osm" {
			continue
		}
		for i, addr := range wireAddrs {
			if addr == info.Shards[0].Addr {
				victim, victimIdx = shardProcs[i], i
			}
		}
	}
	if victim == nil {
		t.Fatal("no spawned host serves osm shard 0")
	}
	degraded := estimate(t, coord.http, stmt, func() {
		victim.cmd.Process.Kill()
		victim.cmd.Wait()
	})
	if !degraded.Degraded || degraded.ShardsLost == 0 {
		t.Fatalf("mid-stream host kill not reflected: %+v", degraded)
	}
	if degraded.Population >= healthy.Population {
		t.Fatalf("degraded population %d not shrunk from %d", degraded.Population, healthy.Population)
	}

	// The coordinator's /shards view marks the dead host's shards down.
	down := 0
	for _, info := range getShards(t, coord.http) {
		down += info.ShardsDown
	}
	if down == 0 {
		t.Fatal("/shards reports no shards down after host kill")
	}

	// Restart the host on the same addresses (fresh empty process), wait
	// for the coordinator's probes to re-admit its shards, and check the
	// next query heals: the restarted host rebuilds its shards over the
	// wire and the full population comes back.
	restarted := spawn(t, bin, shardArgs[victimIdx]...)
	restarted.http = shardProcs[victimIdx].http
	waitHealthz(t, restarted.http, 60*time.Second)
	deadline := time.Now().Add(120 * time.Second)
	for {
		down = 0
		for _, info := range getShards(t, coord.http) {
			down += info.ShardsDown
		}
		if down == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d shards still down after host restart", down)
		}
		time.Sleep(200 * time.Millisecond)
	}
	recovered := estimate(t, coord.http, stmt, nil)
	if recovered.Degraded || !recovered.Exact {
		t.Fatalf("post-restart query still degraded: %+v", recovered)
	}
	if recovered.Population != healthy.Population {
		t.Fatalf("recovered population = %d, want the healthy %d", recovered.Population, healthy.Population)
	}
	// Both runs are exact over the same records; only the accumulation
	// order differs, so the means agree to float tolerance.
	if math.Abs(recovered.Value-healthy.Value) > 1e-6 {
		t.Fatalf("recovered exact AVG = %v, want the healthy %v", recovered.Value, healthy.Value)
	}

	// Replication phase (DESIGN.md §4.8): a second coordinator over the
	// same four hosts at -replicas 2. Shard builds are idempotent on the
	// hosts, so the replicated cluster comes up against live processes.
	// Killing one host mid-stream now loses one COPY of its shards, not
	// the shards themselves: the open query must fail over to the
	// surviving replicas and finish exact over the full population — no
	// degradation, no lost mass.
	procs := make([]*proc, hosts)
	copy(procs, shardProcs)
	procs[victimIdx] = restarted
	coord2Addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	coord2 := spawn(t, bin, append([]string{
		"-role=coordinator", "-shards", strings.Join(wireAddrs, ","),
		"-replicas", "2", "-addr", coord2Addr, "-no-pprof",
	}, genFlags...)...)
	coord2.http = "http://" + coord2Addr
	waitHealthz(t, coord2.http, 180*time.Second)

	// Pick the host serving a copy of osm shard 0 (the primary's address)
	// and kill it mid-stream.
	var victim2 *proc
	for _, info := range getShards(t, coord2.http) {
		if info.Dataset != "osm" {
			continue
		}
		for i, addr := range wireAddrs {
			if addr == info.Shards[0].Addr {
				victim2 = procs[i]
			}
		}
	}
	if victim2 == nil {
		t.Fatal("no spawned host serves a copy of osm shard 0 at R=2")
	}
	failedOver := estimate(t, coord2.http, stmt, func() {
		victim2.cmd.Process.Kill()
		victim2.cmd.Wait()
	})
	if failedOver.Degraded || failedOver.ShardsLost != 0 {
		t.Fatalf("R=2 host kill degraded the query instead of failing over: %+v", failedOver)
	}
	if !failedOver.FailedOver {
		t.Fatalf("R=2 host kill not stamped failed_over: %+v", failedOver)
	}
	if !failedOver.Exact || failedOver.Population != healthy.Population {
		t.Fatalf("failed-over query not exact over the full population: %+v (healthy population %d)",
			failedOver, healthy.Population)
	}
	if math.Abs(failedOver.Value-healthy.Value) > 1e-6 {
		t.Fatalf("failed-over exact AVG = %v, want the healthy %v", failedOver.Value, healthy.Value)
	}

	// With one host dead at R=2 every shard still has a live copy, so the
	// coordinator's shard-level view stays healthy: /shards reports zero
	// shards down even as the per-replica flags mark the dead copies.
	downShards, downReplicas := 0, 0
	for _, info := range getShards(t, coord2.http) {
		downShards += info.ShardsDown
		for _, sh := range info.Shards {
			for _, rep := range sh.Replicas {
				if rep.Down {
					downReplicas++
				}
			}
		}
	}
	if downShards != 0 {
		t.Fatalf("/shards reports %d whole shards down at R=2 with one host dead", downShards)
	}
	if downReplicas == 0 {
		t.Fatal("/shards reports no replicas down after R=2 host kill")
	}
}
