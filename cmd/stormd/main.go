// Command stormd serves STORM's query interface over HTTP, standing in for
// the paper's web demo (www.estorm.org). It preloads the synthetic demo
// datasets and listens for query-language statements.
//
//	stormd -addr :8080 -osm 500000 -tweets 300000
//
//	curl localhost:8080/datasets
//	curl -d '{"statement":"ESTIMATE AVG(altitude) FROM osm WHERE REGION(-112.4,40.2,-111.4,41.2) WITH ERROR 1%"}' localhost:8080/query
//	curl 'localhost:8080/explain?q=COUNT%20FROM%20osm'
//
// Observability (see DESIGN.md "Observability"):
//
//	curl localhost:8080/metrics              engine + server metrics (expvar JSON)
//	curl localhost:8080/healthz              liveness probe (every role)
//	go tool pprof localhost:8080/debug/pprof/profile?seconds=10
//	curl localhost:8080/debug/pprof/         pprof index
//
// -no-metrics disables metric collection; -no-pprof leaves the profiling
// endpoints unmounted (for exposed deployments).
//
// Cluster mode (see DESIGN.md §4.4): shards can run as real processes.
// A shard host serves its shards over TCP and a coordinator samples
// through them:
//
//	stormd -role=shard -wire-addr :9090 -addr :8090
//	stormd -role=shard -wire-addr :9091 -addr :8091
//	stormd -role=coordinator -shards localhost:9090,localhost:9091
//
// Shard hosts regenerate the demo datasets from the same generator flags
// (-seed, -osm, -tweets, -stations), so both sides hold identical rows
// and only sample batches ever cross the wire. The coordinator's /shards
// endpoint reports per-shard placement and liveness; /healthz answers on
// every role. An integer -shards value instead builds the simulated
// in-process cluster:
//
//	stormd -shards 8
//
// Fault tolerance (see DESIGN.md §4.3 and the README operator handbook):
//
//	stormd -shards 8 -fault-plan '2:crash-after=40;5:crash-after=80'
//	stormd -shards 8 -fault-plan '2:crash-after=40,recover-after=6'
//
// -fault-plan injects deterministic shard faults (latency spikes,
// timeouts, transient errors, crashes) at the coordinator's transport
// layer — the same plan drives simulated and remote clusters — whose
// effects surface as storm.distr.faults.* on /metrics and as
// "degraded": true in NDJSON query streams. A crash with recover-after=N
// rejoins after N coordinator observations of the down shard: in-flight
// queries re-admit it, restore the full effective population, and stamp
// "recovered": true instead of degraded. While a shard stays down,
// degraded AVG/SUM snapshots also carry worst-case lost_mass_low/high
// bounds on the full-population answer. -max-streams caps concurrent
// NDJSON streams; excess requests are shed with 429 + Retry-After.
//
// Replication (see DESIGN.md §4.8): -replicas R keeps R copies of every
// shard on distinct hosts (consistent-hash placement). Updates mirror to
// every copy, and when the copy serving a query dies the coordinator
// fails the stream over to a survivor — the query finishes over the full
// population and stamps "failed_over": true instead of degrading:
//
//	stormd -shards localhost:9090,localhost:9091,localhost:9092 -replicas 2 -role=coordinator
//	stormd -shards 8 -replicas 2 -fault-plan '2.0:crash-after=40'
//
// A fault-plan target like '2.0' scripts one replica (shard 2, copy 0);
// a plain '2' applies to every copy of shard 2 independently, so a plain
// crash at R=2 still degrades — both copies die. /shards reports
// per-replica placement and liveness; failover counters land under
// storm.distr.replicas.* on /metrics.
//
// Streaming ingest (see INGEST.md): POST /ingest/{name} accepts NDJSON
// records into sharded in-memory buffers that drain to the indexes in
// the background, and the LAST clause queries the stream's trailing
// event-time window:
//
//	curl -X POST --data-binary @feed.ndjson localhost:8080/ingest/osm
//	curl -d '{"statement":"SELECT COUNT FROM osm LAST 60s"}' localhost:8080/query
//
// -ingest-shards, -ingest-flush-records, -ingest-flush-interval and
// -ingest-max-pending template the per-dataset buffers; when the drain
// backlog reaches -ingest-max-pending the endpoint answers 429 +
// Retry-After with an exact accepted count so producers can resume
// without loss or duplication. Ingest metrics land under
// storm.ingest.<dataset>.* on /metrics.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"storm/internal/data"
	"storm/internal/distr"
	"storm/internal/engine"
	"storm/internal/gen"
	"storm/internal/ingest"
	"storm/internal/server"
	"storm/internal/wire"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	role := flag.String("role", "", "process role: empty/'coordinator' serves queries, 'shard' serves shards over TCP on -wire-addr")
	wireAddr := flag.String("wire-addr", ":9090", "shard RPC listen address (-role=shard)")
	osmN := flag.Int("osm", 500_000, "OSM-like records")
	tweetN := flag.Int("tweets", 300_000, "tweet-like records")
	stations := flag.Int("stations", 2_000, "weather stations")
	seed := flag.Int64("seed", 1, "generator seed")
	pool := flag.Int("pool", 0, "simulated buffer pool pages (0 disables I/O simulation)")
	noMetrics := flag.Bool("no-metrics", false, "disable metric collection and /metrics")
	noPprof := flag.Bool("no-pprof", false, "do not mount /debug/pprof/")
	shardsFlag := flag.String("shards", "", "shard cluster: an integer builds a simulated in-process cluster, a comma-separated host:port list samples through remote -role=shard processes (empty = single node)")
	replicas := flag.Int("replicas", 1, "copies of each shard (requires -shards; R>=2 mirrors updates and fails queries over to surviving copies)")
	faultSpec := flag.String("fault-plan", "", "shard fault plan, e.g. '1:crash-after=40,recover-after=6;*:latency-p=0.05,latency=2ms' (requires -shards)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for probabilistic fault injection")
	maxStreams := flag.Int("max-streams", 0, "max concurrent NDJSON query streams; excess shed with 429 (0 = unlimited)")
	ingestShards := flag.Int("ingest-shards", 8, "buffer shards per dataset behind POST /ingest")
	ingestFlushRecords := flag.Int("ingest-flush-records", 4096, "drain early once any ingest buffer shard holds this many records")
	ingestFlushInterval := flag.Duration("ingest-flush-interval", 25*time.Millisecond, "idle drain period for POST /ingest buffers (worst-case queryability lag)")
	ingestMaxPending := flag.Int("ingest-max-pending", 1<<19, "max records buffered per dataset before POST /ingest returns 429")
	flag.Parse()

	genDatasets := func() []*data.Dataset {
		fmt.Fprintln(os.Stderr, "stormd: generating demo datasets...")
		tweets, _ := gen.Tweets(gen.TweetsConfig{N: *tweetN, Seed: *seed, Snowstorm: true})
		return []*data.Dataset{
			gen.OSM(gen.OSMConfig{N: *osmN, Seed: *seed}),
			tweets,
			gen.Stations(gen.StationsConfig{Stations: *stations, ReadingsPerStation: 48, Seed: *seed, ColdSnap: true}),
		}
	}

	if *role == "shard" {
		runShard(*addr, *wireAddr, genDatasets())
		return
	}
	if *role != "" && *role != "coordinator" {
		log.Fatalf("stormd: unknown -role %q (want 'shard' or 'coordinator')", *role)
	}

	simShards, shardAddrs, err := parseShards(*shardsFlag)
	if err != nil {
		log.Fatalf("stormd: %v", err)
	}
	if *role == "coordinator" && len(shardAddrs) == 0 {
		log.Fatal("stormd: -role=coordinator needs -shards=host:port,… naming the shard processes")
	}

	if *replicas > 1 && simShards == 0 && len(shardAddrs) == 0 {
		log.Fatal("stormd: -replicas requires -shards")
	}

	faults, err := distr.ParseFaultPlan(*faultSpec)
	if err != nil {
		log.Fatalf("stormd: %v", err)
	}
	if faults != nil {
		if simShards == 0 && len(shardAddrs) == 0 {
			log.Fatal("stormd: -fault-plan requires -shards")
		}
		faults.Seed = *faultSeed
	}

	eng := engine.New(engine.Config{Seed: *seed, BufferPoolPages: *pool, NoMetrics: *noMetrics})
	for _, ds := range genDatasets() {
		opts := engine.IndexOptions{LSTree: true, Shards: simShards, ShardAddrs: shardAddrs, Replicas: *replicas, Faults: faults}
		if _, err := eng.Register(ds, opts); err != nil {
			log.Fatalf("stormd: registering %s: %v", ds.Name(), err)
		}
	}

	// The API server (including /metrics) mounts at the root; the pprof
	// handlers are wired explicitly onto a top-level mux rather than via
	// net/http/pprof's DefaultServeMux side effects, so nothing is served
	// that was not deliberately mounted here.
	mux := http.NewServeMux()
	mux.Handle("/", server.New(eng,
		server.WithMaxStreams(*maxStreams),
		server.WithIngestConfig(ingest.Config{
			Shards:        *ingestShards,
			FlushRecords:  *ingestFlushRecords,
			FlushInterval: *ingestFlushInterval,
			MaxPending:    *ingestMaxPending,
		})))
	if !*noPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	fmt.Fprintf(os.Stderr, "stormd: listening on %s\n", *addr)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		log.Fatal(err)
	}
}

// parseShards interprets the -shards flag: empty means single node, an
// integer means that many simulated in-process shards, anything else is a
// comma-separated list of remote shard-host addresses.
func parseShards(s string) (sim int, addrs []string, err error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil, nil
	}
	if n, convErr := strconv.Atoi(s); convErr == nil {
		if n < 0 {
			return 0, nil, fmt.Errorf("-shards %d out of range", n)
		}
		return n, nil, nil
	}
	for _, a := range strings.Split(s, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return 0, nil, fmt.Errorf("-shards %q has an empty host entry", s)
		}
		addrs = append(addrs, a)
	}
	return 0, addrs, nil
}

// runShard serves the demo datasets' shards over the wire protocol plus a
// minimal HTTP surface (/healthz) for liveness probes. Which shards this
// host materializes is decided lazily by the coordinators' Build requests.
func runShard(addr, wireAddr string, datasets []*data.Dataset) {
	host := distr.NewHost()
	for _, ds := range datasets {
		host.AddDataset(ds)
	}
	srv, err := wire.NewServer(wireAddr, host)
	if err != nil {
		log.Fatalf("stormd: shard RPC listen: %v", err)
	}
	defer srv.Close()

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":   "ok",
			"role":     "shard",
			"datasets": len(datasets),
			"shards":   host.Shards(),
		})
	})

	fmt.Fprintf(os.Stderr, "stormd: shard host serving RPC on %s, HTTP on %s\n", srv.Addr(), addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Fatal(err)
	}
}
