// Command stormd serves STORM's query interface over HTTP, standing in for
// the paper's web demo (www.estorm.org). It preloads the synthetic demo
// datasets and listens for query-language statements.
//
//	stormd -addr :8080 -osm 500000 -tweets 300000
//
//	curl localhost:8080/datasets
//	curl -d '{"statement":"ESTIMATE AVG(altitude) FROM osm WHERE REGION(-112.4,40.2,-111.4,41.2) WITH ERROR 1%"}' localhost:8080/query
//	curl 'localhost:8080/explain?q=COUNT%20FROM%20osm'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"storm/internal/data"
	"storm/internal/engine"
	"storm/internal/gen"
	"storm/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	osmN := flag.Int("osm", 500_000, "OSM-like records")
	tweetN := flag.Int("tweets", 300_000, "tweet-like records")
	stations := flag.Int("stations", 2_000, "weather stations")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	eng := engine.New(engine.Config{Seed: *seed})
	fmt.Fprintln(os.Stderr, "stormd: generating demo datasets...")
	tweets, _ := gen.Tweets(gen.TweetsConfig{N: *tweetN, Seed: *seed, Snowstorm: true})
	for _, ds := range []*data.Dataset{
		gen.OSM(gen.OSMConfig{N: *osmN, Seed: *seed}),
		tweets,
		gen.Stations(gen.StationsConfig{Stations: *stations, ReadingsPerStation: 48, Seed: *seed, ColdSnap: true}),
	} {
		if _, err := eng.Register(ds, engine.IndexOptions{LSTree: true}); err != nil {
			log.Fatalf("stormd: registering %s: %v", ds.Name(), err)
		}
	}
	fmt.Fprintf(os.Stderr, "stormd: listening on %s\n", *addr)
	if err := http.ListenAndServe(*addr, server.New(eng)); err != nil {
		log.Fatal(err)
	}
}
