// Command stormd serves STORM's query interface over HTTP, standing in for
// the paper's web demo (www.estorm.org). It preloads the synthetic demo
// datasets and listens for query-language statements.
//
//	stormd -addr :8080 -osm 500000 -tweets 300000
//
//	curl localhost:8080/datasets
//	curl -d '{"statement":"ESTIMATE AVG(altitude) FROM osm WHERE REGION(-112.4,40.2,-111.4,41.2) WITH ERROR 1%"}' localhost:8080/query
//	curl 'localhost:8080/explain?q=COUNT%20FROM%20osm'
//
// Observability (see DESIGN.md "Observability"):
//
//	curl localhost:8080/metrics              engine + server metrics (expvar JSON)
//	go tool pprof localhost:8080/debug/pprof/profile?seconds=10
//	curl localhost:8080/debug/pprof/         pprof index
//
// -no-metrics disables metric collection; -no-pprof leaves the profiling
// endpoints unmounted (for exposed deployments).
//
// Fault tolerance (see DESIGN.md §4.3 and the README operator handbook):
//
//	stormd -shards 8 -fault-plan '2:crash-after=40;5:crash-after=80'
//	stormd -shards 8 -fault-plan '2:crash-after=40,recover-after=6'
//
// -shards registers the demo datasets on a simulated shard cluster;
// -fault-plan injects deterministic shard faults (latency spikes,
// timeouts, transient errors, crashes) whose effects surface as
// storm.distr.faults.* on /metrics and as "degraded": true in NDJSON
// query streams. A crash with recover-after=N rejoins after N
// coordinator observations of the down shard: in-flight queries
// re-admit it, restore the full effective population, and stamp
// "recovered": true instead of degraded. While a shard stays down,
// degraded AVG/SUM snapshots also carry worst-case lost_mass_low/high
// bounds on the full-population answer. -max-streams caps concurrent
// NDJSON streams; excess requests are shed with 429 + Retry-After.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"

	"storm/internal/data"
	"storm/internal/distr"
	"storm/internal/engine"
	"storm/internal/gen"
	"storm/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	osmN := flag.Int("osm", 500_000, "OSM-like records")
	tweetN := flag.Int("tweets", 300_000, "tweet-like records")
	stations := flag.Int("stations", 2_000, "weather stations")
	seed := flag.Int64("seed", 1, "generator seed")
	pool := flag.Int("pool", 0, "simulated buffer pool pages (0 disables I/O simulation)")
	noMetrics := flag.Bool("no-metrics", false, "disable metric collection and /metrics")
	noPprof := flag.Bool("no-pprof", false, "do not mount /debug/pprof/")
	shards := flag.Int("shards", 0, "simulated shard servers per dataset (0 = single node)")
	faultSpec := flag.String("fault-plan", "", "shard fault plan, e.g. '1:crash-after=40,recover-after=6;*:latency-p=0.05,latency=2ms' (requires -shards)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for probabilistic fault injection")
	maxStreams := flag.Int("max-streams", 0, "max concurrent NDJSON query streams; excess shed with 429 (0 = unlimited)")
	flag.Parse()

	faults, err := distr.ParseFaultPlan(*faultSpec)
	if err != nil {
		log.Fatalf("stormd: %v", err)
	}
	if faults != nil {
		if *shards == 0 {
			log.Fatal("stormd: -fault-plan requires -shards > 0")
		}
		faults.Seed = *faultSeed
	}

	eng := engine.New(engine.Config{Seed: *seed, BufferPoolPages: *pool, NoMetrics: *noMetrics})
	fmt.Fprintln(os.Stderr, "stormd: generating demo datasets...")
	tweets, _ := gen.Tweets(gen.TweetsConfig{N: *tweetN, Seed: *seed, Snowstorm: true})
	for _, ds := range []*data.Dataset{
		gen.OSM(gen.OSMConfig{N: *osmN, Seed: *seed}),
		tweets,
		gen.Stations(gen.StationsConfig{Stations: *stations, ReadingsPerStation: 48, Seed: *seed, ColdSnap: true}),
	} {
		if _, err := eng.Register(ds, engine.IndexOptions{LSTree: true, Shards: *shards, Faults: faults}); err != nil {
			log.Fatalf("stormd: registering %s: %v", ds.Name(), err)
		}
	}

	// The API server (including /metrics) mounts at the root; the pprof
	// handlers are wired explicitly onto a top-level mux rather than via
	// net/http/pprof's DefaultServeMux side effects, so nothing is served
	// that was not deliberately mounted here.
	mux := http.NewServeMux()
	mux.Handle("/", server.New(eng, server.WithMaxStreams(*maxStreams)))
	if !*noPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	fmt.Fprintf(os.Stderr, "stormd: listening on %s\n", *addr)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		log.Fatal(err)
	}
}
