// Command stormimport runs a file through STORM's data connector — schema
// discovery, parsing, coordinate mapping — then indexes it and answers one
// optional query, demonstrating the paper's "data import" demo component.
//
//	stormimport -in weather.csv
//	stormimport -in tweets.jsonl -format jsonl -x lng -y lat -t ts
//	stormimport -in dump.sql -format sql -q "COUNT FROM dump WHERE REGION(-125,24,-66,50)"
//
// The import also round-trips the records through the simulated
// DFS-backed document store, reporting per-node storage balance.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"storm/internal/connector"
	"storm/internal/data"
	"storm/internal/dfs"
	"storm/internal/docstore"
	"storm/internal/engine"
	"storm/internal/query"
)

func main() {
	in := flag.String("in", "", "input file (required)")
	format := flag.String("format", "", "csv, tsv, jsonl, sql, kv (default: by extension)")
	x := flag.String("x", "", "longitude column override")
	y := flag.String("y", "", "latitude column override")
	tcol := flag.String("t", "", "time column override")
	skip := flag.Bool("skip-invalid", true, "skip rows with unparsable coordinates")
	stmt := flag.String("q", "", "query to run after import")
	storeNodes := flag.Int("store-nodes", 4, "simulated DFS nodes for the document store")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "stormimport: -in is required")
		os.Exit(2)
	}
	name := strings.TrimSuffix(filepath.Base(*in), filepath.Ext(*in))
	open := func() (io.Reader, error) { return os.Open(*in) }

	f := *format
	if f == "" {
		switch strings.ToLower(filepath.Ext(*in)) {
		case ".csv":
			f = "csv"
		case ".tsv":
			f = "tsv"
		case ".jsonl", ".ndjson":
			f = "jsonl"
		case ".sql":
			f = "sql"
		case ".kv":
			f = "kv"
		default:
			fmt.Fprintf(os.Stderr, "stormimport: cannot infer format of %q; use -format\n", *in)
			os.Exit(2)
		}
	}
	var src connector.Source
	switch f {
	case "csv":
		src = connector.NewCSVSource(name, ',', open)
	case "tsv":
		src = connector.NewCSVSource(name, '\t', open)
	case "jsonl":
		src = connector.NewJSONLSource(name, open)
	case "sql":
		src = connector.NewSQLDumpSource(name, open)
	case "kv":
		src = connector.NewKVSource(name, open)
	default:
		fmt.Fprintf(os.Stderr, "stormimport: unknown format %q\n", f)
		os.Exit(2)
	}

	schema, err := connector.DiscoverSchema(src, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stormimport: schema discovery: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("discovered schema for %s:\n", name)
	for _, fl := range schema.Fields {
		role := ""
		switch fl.Name {
		case schema.X:
			role = " (longitude)"
		case schema.Y:
			role = " (latitude)"
		case schema.T:
			role = " (time)"
		}
		fmt.Printf("  %-20s %s%s\n", fl.Name, fl.Type, role)
	}

	res, err := connector.Import(src, connector.Mapping{X: *x, Y: *y, T: *tcol, SkipInvalid: *skip})
	if err != nil {
		fmt.Fprintf(os.Stderr, "stormimport: import: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("imported %d rows (%d skipped)\n", res.Rows, res.Skipped)

	// Persist through the DFS-backed document store, the paper's storage
	// engine path ("JSON format in a distributed MongoDB installation").
	cluster, err := dfs.New(dfs.Config{Nodes: *storeNodes, Replication: 2})
	if err != nil {
		fmt.Fprintf(os.Stderr, "stormimport: %v\n", err)
		os.Exit(1)
	}
	store := docstore.Open(cluster)
	ds := res.Dataset
	for i := 0; i < ds.Len(); i++ {
		id := data.ID(i)
		p := ds.Pos(id)
		doc := docstore.Document{"lon": p.X(), "lat": p.Y(), "time": p.T()}
		for _, c := range ds.NumericColumns() {
			v, _ := ds.Numeric(c, id)
			doc[c] = v
		}
		for _, c := range ds.StringColumns() {
			v, _ := ds.String(c, id)
			doc[c] = v
		}
		if _, err := store.Insert(name, doc); err != nil {
			fmt.Fprintf(os.Stderr, "stormimport: store: %v\n", err)
			os.Exit(1)
		}
	}
	if err := store.Flush(name); err != nil {
		fmt.Fprintf(os.Stderr, "stormimport: store flush: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("document store segments per DFS node:")
	for _, st := range cluster.Stats() {
		fmt.Printf("  node %d: %d chunks, %d bytes\n", st.Node, st.Chunks, st.BytesStored)
	}

	eng := engine.New(engine.Config{Seed: 1})
	if _, err := eng.Register(ds, engine.IndexOptions{}); err != nil {
		fmt.Fprintf(os.Stderr, "stormimport: indexing: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("indexed %d records as dataset %q\n", ds.Len(), name)

	if *stmt != "" {
		if err := query.Execute(context.Background(), eng, *stmt, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "stormimport: query: %v\n", err)
			os.Exit(1)
		}
	}
}
