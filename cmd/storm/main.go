// Command storm is an interactive REPL speaking the STORM query language.
//
// It starts with synthetic versions of the paper's demo datasets loaded
// (osm, mesowest, tweets) and accepts statements such as:
//
//	ESTIMATE AVG(altitude) FROM osm WHERE REGION(-112.4, 40.2, -111.4, 41.2) WITH ERROR 1%
//	COUNT FROM tweets WHERE REGION(-85.4, 32.7, -83.4, 34.7) AND TIME(864000, 1123200)
//	KDE FROM tweets WHERE REGION(-125, 24, -66, 50) GRID 48x24 SAMPLES 2000
//	TERMS(text) FROM tweets WHERE REGION(-85.4, 32.7, -83.4, 34.7) AND TIME(864000, 1123200) TOP 10
//	SHOW DATASETS
//
// Flags control dataset sizes; -q runs one statement and exits.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"storm/internal/data"
	"storm/internal/engine"
	"storm/internal/gen"
	"storm/internal/query"
)

func main() {
	osmN := flag.Int("osm", 500_000, "OSM-like records to generate")
	tweetN := flag.Int("tweets", 300_000, "tweet-like records to generate")
	stations := flag.Int("stations", 2_000, "weather stations to generate")
	readings := flag.Int("readings", 48, "readings per station")
	seed := flag.Int64("seed", 1, "generator seed")
	oneShot := flag.String("q", "", "execute one statement and exit")
	flag.Parse()

	eng := engine.New(engine.Config{Seed: *seed})
	fmt.Fprintln(os.Stderr, "storm: generating demo datasets...")
	tweets, _ := gen.Tweets(gen.TweetsConfig{N: *tweetN, Seed: *seed, Snowstorm: true})
	for _, ds := range []*data.Dataset{
		gen.OSM(gen.OSMConfig{N: *osmN, Seed: *seed}),
		tweets,
		gen.Stations(gen.StationsConfig{Stations: *stations, ReadingsPerStation: *readings, Seed: *seed}),
	} {
		if _, err := eng.Register(ds, engine.IndexOptions{LSTree: true}); err != nil {
			fmt.Fprintf(os.Stderr, "storm: registering %s: %v\n", ds.Name(), err)
			os.Exit(1)
		}
	}
	fmt.Fprintln(os.Stderr, "storm: ready (type a statement, 'help', or 'quit')")

	if *oneShot != "" {
		if err := query.Execute(context.Background(), eng, *oneShot, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "storm: %v\n", err)
			os.Exit(1)
		}
		return
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("storm> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch strings.ToLower(line) {
		case "":
			continue
		case "quit", "exit", "\\q":
			return
		case "help", "\\h":
			printHelp()
			continue
		}
		if err := query.Execute(context.Background(), eng, line, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		}
	}
}

func printHelp() {
	fmt.Println(`statements:
  ESTIMATE AVG|SUM|MIN|MAX|VARIANCE|STDDEV|MEDIAN(attr) FROM ds
      [WHERE REGION(x1,y1,x2,y2) [AND TIME(t1,t2)]]
      [GROUP BY strcol] [WITH CONFIDENCE 95%] [ERROR 1%] [WITHIN 500ms]
      [SAMPLES n] [USING rstree|lstree|randompath|queryfirst|samplefirst]
  ESTIMATE QUANTILE(attr, 0.9) FROM ds [WHERE ...]
  ESTIMATE AVG(a), STDDEV(a), MEDIAN(a) FROM ds ...   (one shared sample stream)
  COUNT FROM ds [WHERE ...]
  EXPLAIN ESTIMATE ... | EXPLAIN COUNT ...
  KDE FROM ds [WHERE ...] [GRID 32x32] [SAMPLES n]
  HOTSPOTS(k) FROM ds [WHERE ...] [GRID 32x32] [SAMPLES n]
  TERMS(textcol) FROM ds [WHERE ...] [TOP 10] [SAMPLES n]
  TRAJECTORY(usercol, 'user') FROM ds [WHERE ...] [SAMPLES n]
  CLUSTER(k) FROM ds [WHERE ...] [SAMPLES n]
  INSERT INTO ds VALUES (lon, lat, t), ...
  DELETE FROM ds WHERE REGION(...) [AND TIME(...)]
  SHOW DATASETS`)
}
