// Package storm is a Go implementation of STORM — Spatio-Temporal Online
// Reasoning and Management of large spatio-temporal data (Christensen et
// al., SIGMOD 2015).
//
// STORM answers analytical queries over spatio-temporal data *online*:
// instead of scanning every matching record, it draws a stream of uniform
// random samples from the query range through purpose-built sampling
// indexes (the LS-tree and RS-tree) and maintains unbiased estimates whose
// confidence intervals tighten continuously. The user — or a target
// accuracy, or a time budget — decides when to stop.
//
// # Quick start
//
//	db := storm.Open(storm.Config{Seed: 1})
//	ds := storm.GenerateOSM(storm.OSMConfig{N: 1_000_000, Seed: 1})
//	h, _ := db.Register(ds, storm.IndexOptions{})
//
//	q := storm.Range{MinX: -112.2, MinY: 40.3, MaxX: -111.6, MaxY: 41.0,
//	    MinT: 0, MaxT: 86400 * 90}
//	snap, _ := h.Estimate(context.Background(), q, storm.Options{
//	    Kind: storm.Avg, Attr: "altitude", TargetRelError: 0.01,
//	})
//	fmt.Println(snap) // AVG ≈ 1430 ± 14 (95% confidence, 2176 samples)
//
// For interactive exploration use EstimateOnline, which streams snapshots
// and honors context cancellation, or a Session, which cancels the running
// query whenever a new one starts.
//
// # Concurrency
//
// Queries are concurrent: any number of goroutines may run estimates,
// analytics or Sample calls against one Handle simultaneously — the
// indexes share immutable state and publish their lazy sample buffers
// copy-on-write, while every query keeps its own RNG, cursors and I/O
// counters. Insert, Delete and DeleteRange briefly take the handle's write
// lock and serialize against in-flight queries, so updates stay correct
// without stopping the query stream. Two queries given the same explicit
// Options.Seed return identical sample streams whether they run serially
// or concurrently.
//
// The package also exposes STORM's online analytics (KDE, clustering,
// trajectory reconstruction, short-text terms), its keyword query language
// (Exec), the data connector (ImportCSV and friends), and the synthetic
// workload generators used by the benchmark harness.
package storm

import (
	"context"
	"io"

	"storm/internal/analytics"
	"storm/internal/connector"
	"storm/internal/data"
	"storm/internal/dfs"
	"storm/internal/distr"
	"storm/internal/docstore"
	"storm/internal/engine"
	"storm/internal/estimator"
	"storm/internal/gen"
	"storm/internal/geo"
	"storm/internal/persist"
	"storm/internal/pred"
	"storm/internal/query"
	"storm/internal/sampling"
)

// Core types re-exported from the engine and its substrates. The aliases
// make the root package the single import a downstream user needs.
type (
	// Config controls engine-wide behaviour (seed, buffer pool, fanout).
	Config = engine.Config
	// Engine manages datasets, indexes and query execution.
	Engine = engine.Engine
	// Handle is a registered, indexed dataset.
	Handle = engine.Handle
	// Session serializes interactive queries, cancelling the previous
	// one when a new one starts.
	Session = engine.Session
	// IndexOptions selects which sampling indexes Register builds.
	IndexOptions = engine.IndexOptions
	// Options controls one online aggregation query.
	Options = engine.Options
	// Snapshot is one progress report of an online query.
	Snapshot = engine.Snapshot
	// AnalyticOptions controls online analytic tasks.
	AnalyticOptions = engine.AnalyticOptions
	// KDEOptions configures online kernel density estimation.
	KDEOptions = engine.KDEOptions
	// KDESnapshot is a KDE progress report.
	KDESnapshot = engine.KDESnapshot
	// TermsSnapshot is a short-text analysis progress report.
	TermsSnapshot = engine.TermsSnapshot
	// TrajectorySnapshot is a trajectory reconstruction progress report.
	TrajectorySnapshot = engine.TrajectorySnapshot
	// ClusterSnapshot is a clustering progress report.
	ClusterSnapshot = engine.ClusterSnapshot
	// GroupsSnapshot is a group-by progress report.
	GroupsSnapshot = engine.GroupsSnapshot
	// AggSpec names one aggregate of a multi-aggregate query.
	AggSpec = engine.AggSpec
	// MultiSnapshot is a joint multi-aggregate progress report.
	MultiSnapshot = engine.MultiSnapshot
	// Plan is the optimizer's EXPLAIN output.
	Plan = engine.Plan
	// Method selects a sampling strategy.
	Method = engine.Method
	// Contract is a per-query accuracy/latency guarantee request
	// (relative-error target at a confidence, optional deadline) for
	// Handle.EstimateContract.
	Contract = engine.Contract
	// ContractPlan is the planner's prediction for a contract query:
	// sample budget, predicted time, and feasibility under the deadline.
	ContractPlan = engine.ContractPlan
	// ContractResult is the single final answer of a contract query,
	// graded against the requested guarantee.
	ContractResult = engine.ContractResult
	// ContractStatus grades a contract answer (met, degraded, missed).
	ContractStatus = engine.ContractStatus
	// PredTerm is one attribute interval of a WHERE predicate
	// (Options.Where is a conjunction of these).
	PredTerm = pred.Term
	// PushdownStrategy overrides the planner's pushdown-vs-rejection
	// choice for a WHERE predicate (Options.Pushdown).
	PushdownStrategy = engine.PushdownStrategy

	// ShardCluster is the simulated distributed deployment behind a
	// Handle registered with IndexOptions.Shards > 0.
	ShardCluster = distr.Cluster
	// FaultPlan scripts deterministic per-shard fault injection for a
	// sharded registration (IndexOptions.Faults).
	FaultPlan = distr.FaultPlan
	// ShardFaultPlan scripts the faults of one shard.
	ShardFaultPlan = distr.ShardFaultPlan
	// FaultStats is a snapshot of fault-injection activity.
	FaultStats = distr.FaultStats
	// AttrSummary is a coordinator-side per-shard attribute summary
	// (exact count/sum/min/max); it is what widens a degraded CI into
	// the worst-case lost-mass bounds on the full population.
	AttrSummary = distr.AttrSummary

	// Range is a spatio-temporal query range.
	Range = geo.Range
	// Vec is a point in (x, y, t) space.
	Vec = geo.Vec

	// Dataset is the columnar record store indexes are built over.
	Dataset = data.Dataset
	// Row carries one record during appends and imports.
	Row = data.Row
	// Entry is an (ID, position) pair returned by samplers.
	Entry = data.Entry

	// Estimate is a point-in-time aggregate estimate with its CI.
	Estimate = estimator.Estimate
	// Kind identifies an aggregate (Avg, Sum, Count, Min, Max).
	Kind = estimator.Kind

	// DensityMap is an online KDE snapshot.
	DensityMap = analytics.DensityMap
	// Path is a reconstructed trajectory.
	Path = analytics.Path
	// TermSnapshot is a short-text term-frequency snapshot.
	TermSnapshot = analytics.TermSnapshot
	// Clustering is an online k-means snapshot.
	Clustering = analytics.Clustering

	// Mode selects with/without-replacement sampling.
	Mode = sampling.Mode

	// Source is an external data source for the connector.
	Source = connector.Source
	// Mapping tells imports which columns hold coordinates.
	Mapping = connector.Mapping
	// ImportResult reports what an import did.
	ImportResult = connector.ImportResult
	// Schema is a discovered source schema.
	Schema = connector.Schema

	// OSMConfig configures the OSM-like generator.
	OSMConfig = gen.OSMConfig
	// StationsConfig configures the MesoWest-like generator.
	StationsConfig = gen.StationsConfig
	// TweetsConfig configures the Twitter-like generator.
	TweetsConfig = gen.TweetsConfig
)

// Aggregate kinds.
const (
	Avg      = estimator.Avg
	Sum      = estimator.Sum
	Count    = estimator.Count
	Min      = estimator.Min
	Max      = estimator.Max
	Variance = estimator.Variance
	Stddev   = estimator.Stddev
	Median   = estimator.Median
	Quantile = estimator.Quant
)

// Sampling modes.
const (
	WithoutReplacement = sampling.WithoutReplacement
	WithReplacement    = sampling.WithReplacement
)

// Sampling methods.
const (
	Auto              = engine.Auto
	MethodRSTree      = engine.MethodRSTree
	MethodLSTree      = engine.MethodLSTree
	MethodRandomPath  = engine.MethodRandomPath
	MethodQueryFirst  = engine.MethodQueryFirst
	MethodSampleFirst = engine.MethodSampleFirst
	MethodDistributed = engine.MethodDistributed
)

// Predicate pushdown strategies (Options.Pushdown).
const (
	PushdownAuto  = engine.PushdownAuto
	PushdownForce = engine.PushdownForce
	PushdownOff   = engine.PushdownOff
)

// Contract outcomes (ContractResult.Status).
const (
	// ContractMet marks an answer that satisfied every requested bound.
	ContractMet = engine.ContractMet
	// ContractDegraded marks an on-time answer whose achieved error is
	// wider than requested — the deadline cut sampling short.
	ContractDegraded = engine.ContractDegraded
	// ContractMissed marks an answer that blew its deadline or was
	// cancelled before producing a usable estimate.
	ContractMissed = engine.ContractMissed
)

// ShardAll is the FaultPlan.Shards key whose plan applies to every shard
// without an explicit entry.
const ShardAll = distr.ShardAll

// ParseFaultPlan parses an operator fault-plan string — the grammar behind
// stormd's -fault-plan flag, e.g. "2:crash-after=40;*:latency-p=0.05".
func ParseFaultPlan(spec string) (*FaultPlan, error) { return distr.ParseFaultPlan(spec) }

// Open returns a new STORM engine.
func Open(cfg Config) *Engine { return engine.New(cfg) }

// NewSession returns an interactive session over a dataset handle.
func NewSession(h *Handle) *Session { return engine.NewSession(h) }

// NewDataset returns an empty dataset with the given name.
func NewDataset(name string) *Dataset { return data.NewDataset(name) }

// Exec parses and runs one statement of the STORM query language against
// the engine, writing online progress and results to w.
func Exec(ctx context.Context, e *Engine, statement string, w io.Writer) error {
	return query.Execute(ctx, e, statement, w)
}

// SpatialRange returns a range over the given spatial box and all of time.
func SpatialRange(minX, minY, maxX, maxY float64) Range {
	return geo.SpatialRange(minX, minY, maxX, maxY)
}

// UniverseRange returns a range covering everything.
func UniverseRange() Range { return geo.UniverseRange() }

// GenerateOSM builds the OSM-like synthetic dataset (clustered points with
// an "altitude" attribute).
func GenerateOSM(cfg OSMConfig) *Dataset { return gen.OSM(cfg) }

// GenerateStations builds the MesoWest-like synthetic measurement network.
func GenerateStations(cfg StationsConfig) *Dataset { return gen.Stations(cfg) }

// GenerateTweets builds the Twitter-like synthetic dataset and returns the
// ground-truth trajectory of every user.
func GenerateTweets(cfg TweetsConfig) (*Dataset, map[string][]Vec) {
	return gen.Tweets(cfg)
}

// ImportCSV imports comma- or delimiter-separated text through the data
// connector (schema discovery included). open is invoked once per pass.
func ImportCSV(name string, comma rune, open func() (io.Reader, error), m Mapping) (*ImportResult, error) {
	return connector.Import(connector.NewCSVSource(name, comma, open), m)
}

// ImportJSONL imports one-JSON-object-per-line data.
func ImportJSONL(name string, open func() (io.Reader, error), m Mapping) (*ImportResult, error) {
	return connector.Import(connector.NewJSONLSource(name, open), m)
}

// ImportSQLDump imports a simplified MySQL dump (CREATE TABLE + INSERTs).
func ImportSQLDump(name string, open func() (io.Reader, error), m Mapping) (*ImportResult, error) {
	return connector.Import(connector.NewSQLDumpSource(name, open), m)
}

// ImportKV imports "key<TAB>json" lines (a key-value store export).
func ImportKV(name string, open func() (io.Reader, error), m Mapping) (*ImportResult, error) {
	return connector.Import(connector.NewKVSource(name, open), m)
}

// DiscoverSchema infers column types and spatial/temporal roles from a
// source without importing it.
func DiscoverSchema(src Source, sampleLimit int) (Schema, error) {
	return connector.DiscoverSchema(src, sampleLimit)
}

// Store is the JSON document store over the simulated DFS — STORM's
// storage engine.
type Store = docstore.Store

// OpenStore returns a document store over a simulated DFS cluster with the
// given number of storage nodes (replication 2, capped at the node count).
func OpenStore(nodes int) (*Store, error) {
	repl := 2
	if repl > nodes {
		repl = nodes
	}
	cluster, err := dfs.New(dfs.Config{Nodes: nodes, Replication: repl})
	if err != nil {
		return nil, err
	}
	return docstore.Open(cluster), nil
}

// SaveDataset persists a dataset into the storage engine as JSON documents.
func SaveDataset(store *Store, ds *Dataset) error { return persist.Save(store, ds) }

// LoadDataset reads a dataset previously written by SaveDataset.
func LoadDataset(store *Store, name string) (*Dataset, error) { return persist.Load(store, name) }
