module storm

go 1.22
