# Development targets for the STORM reproduction.

GO ?= go

# Packages with concurrency-sensitive code paths: shared indexes, the
# query engine, the I/O accounting, the HTTP server and the simulated
# cluster all run under -race.
RACE_PKGS := ./internal/rstree/ ./internal/lstree/ ./internal/sampling/ \
	./internal/engine/ ./internal/iosim/ ./internal/server/ ./internal/distr/ \
	./internal/obs/ ./internal/wire/ ./internal/ingest/

.PHONY: verify fmt vet build test race bench bench-batch docs-lint docs-check bench-obs bench-faults test-stats test-stats-failover fuzz-smoke test-cluster bench-cluster bench-pushdown bench-contracts bench-ingest bench-replication

verify: fmt vet build test race docs-lint

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -run NONE -bench . -benchtime 1x .

# Batched-sampling comparison in benchstat-friendly form: pipe the output
# of two runs (before/after) into benchstat to quantify the fast path.
bench-batch:
	$(GO) test -run NONE -bench 'BenchmarkBatchedSampling' -benchtime 500x -count 5 -benchmem .

# Godoc discipline: every exported identifier in the observability-facing
# packages must have a doc comment (stdlib-only checker, see cmd/docslint).
docs-lint:
	$(GO) run ./cmd/docslint

# Documentation health: godoc discipline plus the markdown link checker
# over the user-facing docs (relative links and anchors must resolve; see
# cmd/linkcheck).
docs-check: docs-lint
	$(GO) run ./cmd/linkcheck README.md DESIGN.md QUERYLANG.md OPERATIONS.md EXPERIMENTS.md INGEST.md ROADMAP.md

# Metrics-on vs metrics-off cost of the instrumented batched query path;
# TestObsOverheadBudget enforces the <=2% budget when asked explicitly.
bench-obs:
	$(GO) test -run NONE -bench 'BenchmarkObsOverhead' -benchtime 200x -benchmem ./internal/engine/

# Fault ablation smoke: kill k of 8 shards mid-query and print the
# CI-width / latency impact table (see EXPERIMENTS.md A7).
bench-faults:
	$(GO) run ./cmd/stormbench -fig a7

# Statistical correctness harness: uniformity chi-square, CI coverage
# rate, and lost-mass-bound coverage over hundreds of seeded
# kill/degrade/recover runs (internal/stats/statcheck). Seeds are fixed
# in the tests, so a failure is a real regression, not sampling noise
# (false-positive budget ~1e-3 per check, see the statcheck package doc).
test-stats:
	$(GO) test -race -run 'TestStat' -v ./internal/distr/
	$(GO) test -race -run 'TestStat' -v ./internal/engine/
	$(GO) test -race -run 'TestStat' -v ./internal/ingest/
	$(GO) test -race ./internal/stats/statcheck/

# Failover slice of the statistical harness on its own: first-sample
# uniformity, CI coverage, mean unbiasedness and windowed-churn uniformity
# of post-failover streams (hundreds of seeded kill-one-replica runs; the
# full test-stats target includes these too).
test-stats-failover:
	$(GO) test -race -run 'TestStatFailover' -v ./internal/distr/

# Short fuzz passes over the operator/network-facing input surfaces: the
# fault-plan grammar (no panic, canonical round-trip), the wire codec (no
# panic on arbitrary frames, decode∘encode identity), and the query
# language's WHERE, contract and LAST-window grammars (no panic, canonical
# fixpoints).
# The checked-in corpora also run on plain `go test`.
fuzz-smoke:
	$(GO) test -run FuzzParseFaultPlan -fuzz FuzzParseFaultPlan -fuzztime 15s ./internal/distr/
	$(GO) test -run FuzzWireCodec -fuzz FuzzWireCodec -fuzztime 15s ./internal/wire/
	$(GO) test -run FuzzParseWhere -fuzz FuzzParseWhere -fuzztime 15s ./internal/query/
	$(GO) test -run FuzzParseContract -fuzz FuzzParseContract -fuzztime 15s ./internal/query/
	$(GO) test -run FuzzParseWindow -fuzz FuzzParseWindow -fuzztime 15s ./internal/query/

# Real-process cluster smoke: build stormd, spawn 4 -role=shard processes
# plus a coordinator, query over HTTP, kill one shard host mid-stream and
# assert the NDJSON stream degrades, then restart the host and assert the
# cluster re-admits its shards (see cmd/stormd/cluster_test.go).
test-cluster:
	STORM_CLUSTER_TEST=1 $(GO) test -run TestClusterSmoke -v -timeout 300s ./cmd/stormd/

# Transport ablation: the identical seeded drain through the loopback
# cluster vs real TCP shard hosts (EXPERIMENTS.md A9).
bench-cluster:
	$(GO) run ./cmd/stormbench -fig a9

# Predicate-pushdown ablation: node-summary pruning vs the rejection
# baseline across predicate selectivities, plus the loopback-vs-TCP
# byte-identity check of the distributed pushdown stream
# (EXPERIMENTS.md A10).
bench-pushdown:
	$(GO) run ./cmd/stormbench -fig a10

# Contract ablation: ERROR/WITHIN accuracy-latency contracts across error
# targets and deadlines — met/degraded/missed split and latency
# percentiles — vs the uncapped snapshot-stream baseline
# (EXPERIMENTS.md A11).
bench-contracts:
	$(GO) run ./cmd/stormbench -fig a11

# Streaming-ingest ablation: sustained insert throughput through the
# sharded ingest buffer vs concurrent LAST-windowed query latency, across
# buffer-shard counts (EXPERIMENTS.md A12).
bench-ingest:
	$(GO) run ./cmd/stormbench -fig a12

# Replication ablation: R=1 degradation vs R=2 failover when the query's
# hottest shard loses a copy mid-stream (EXPERIMENTS.md A13).
bench-replication:
	$(GO) run ./cmd/stormbench -fig a13
